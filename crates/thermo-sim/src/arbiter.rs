//! The fast-tier arbiter: a pure, deterministic state machine that owns
//! one shared DRAM pool and moves capacity between colocated tenants on
//! demand (DESIGN.md §13).
//!
//! The arbiter never touches an engine itself — it consumes
//! [`TenantReport`]s (produced by reporter components from §4.3's
//! slowdown-estimation machinery) and emits [`Decision`]s that the
//! scheduler's arbiter component applies. Keeping it pure makes the whole
//! grant/reclaim protocol property-testable without building engines
//! (`tests/prop_arbiter.rs` drives 256 randomized interleavings straight
//! against this type).
//!
//! Invariants (enforced here, asserted in the property tests):
//!
//! 1. **Conservation** — `Σ grants + unallocated == pool_bytes` after
//!    every call; a byte granted to one tenant was taken from exactly one
//!    source (the unallocated reserve or a single donor's reclaim).
//! 2. **No starvation** — tenants over their slowdown SLO with parked
//!    demand age by `wait_rounds`; the longest waiter is served first
//!    every rebalance, so any persistent violator is granted capacity
//!    within a bounded number of rounds whenever supply exists.
//! 3. **Reserved capacity is untouchable** — bytes a donor reports as
//!    held by in-flight migration-fabric transactions are never counted
//!    reclaimable, so a reclaim can never evict a page mid-transaction
//!    (the engine's `reclaim_fast_cold` additionally skips live
//!    transactions page-by-page as a second line of defence).
//! 4. **Congestion deference** — while any tenant reports a busy fabric,
//!    grants that would add migration traffic are deferred, but only up
//!    to `max_defer_rounds` times so congestion cannot starve a tenant
//!    forever.

use std::collections::BTreeMap;

/// Static arbiter knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArbiterConfig {
    /// Total fast-tier bytes the arbiter may hand out.
    pub pool_bytes: u64,
    /// Bytes moved per grant decision (one quantum per needy tenant per
    /// rebalance round keeps reallocation incremental and reversible).
    pub grant_quantum_bytes: u64,
    /// Rounds a grant may be deferred for fabric congestion before it is
    /// issued anyway.
    pub max_defer_rounds: u32,
}

impl Default for ArbiterConfig {
    fn default() -> Self {
        Self {
            pool_bytes: 0,
            grant_quantum_bytes: 8 << 20,
            max_defer_rounds: 3,
        }
    }
}

/// One tenant's periodic self-report: everything the arbiter needs to
/// judge need (slowdown vs SLO, parked demand) and supply (idle and cold
/// capacity, minus what the fabric holds in flight).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TenantReport {
    /// Estimated slowdown over the last report interval, percent — the
    /// paper's §4.3 estimate `Δ(slow faults) × fault_ns / Δ(app time)`.
    pub slowdown_pct: f64,
    /// Fast-tier bytes currently in use.
    pub used_fast_bytes: u64,
    /// Fast-tier bytes whose Accessed bit is clear — cold capacity a
    /// reclaim can steal first.
    pub cold_fast_bytes: u64,
    /// Bytes held by in-flight migration-fabric transactions; never
    /// reclaimable (invariant 3).
    pub reserved_bytes: u64,
    /// Bytes of demand parked in the slow tier (capacity-pressure
    /// fallbacks and prior reclaims the tenant wants back).
    pub displaced_bytes: u64,
    /// True when this tenant's migration fabric is actively copying.
    pub fabric_congested: bool,
}

/// What a [`Decision`] does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionKind {
    /// Capacity added to the tenant's grant (apply, then promote
    /// displaced pages).
    Grant,
    /// Capacity removed from the tenant's grant (demote cold pages, then
    /// lower the cap).
    Reclaim,
    /// A needy tenant's grant was postponed for fabric congestion.
    Defer,
}

/// One arbitration outcome for one tenant, emitted by
/// [`Arbiter::rebalance`] in application order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Tenant the decision applies to.
    pub tenant: u32,
    /// Grant, reclaim, or congestion deferral.
    pub kind: DecisionKind,
    /// Bytes moved (0 for [`DecisionKind::Defer`]).
    pub bytes: u64,
    /// The tenant's total grant after this decision is applied.
    pub grant_after: u64,
}

/// One applied arbitration event, timestamped on the virtual timeline —
/// the serialized trace embedded in `tenants_shared` artifact notes.
#[derive(Debug, Clone, PartialEq)]
pub struct ArbiterEvent {
    /// Virtual time of the rebalance that produced the event, ns.
    pub at_ns: u64,
    /// Tenant the event applies to.
    pub tenant: u64,
    /// `"grant"`, `"reclaim"`, or `"defer"`.
    pub action: String,
    /// Bytes moved.
    pub bytes: u64,
    /// The tenant's total grant after the event.
    pub grant_after_bytes: u64,
    /// The tenant's reported slowdown (percent, ×100 and truncated to an
    /// integer so golden comparison is exact).
    pub slowdown_centi_pct: u64,
}

thermo_util::json_struct!(ArbiterEvent {
    at_ns,
    tenant,
    action,
    bytes,
    grant_after_bytes,
    slowdown_centi_pct,
});

#[derive(Debug, Clone)]
struct TenantSlot {
    grant_bytes: u64,
    slo_pct: f64,
    report: TenantReport,
    reported: bool,
    wait_rounds: u32,
    defer_rounds: u32,
}

/// The pure arbitration state machine. See the module docs for the
/// protocol and invariants.
#[derive(Debug, Clone)]
pub struct Arbiter {
    cfg: ArbiterConfig,
    tenants: BTreeMap<u32, TenantSlot>,
}

impl Arbiter {
    /// Creates an arbiter owning `cfg.pool_bytes` of fast-tier capacity.
    pub fn new(cfg: ArbiterConfig) -> Self {
        Self {
            cfg,
            tenants: BTreeMap::new(),
        }
    }

    /// Registers a tenant with its starting grant and slowdown SLO.
    ///
    /// # Panics
    ///
    /// Panics if the initial grants oversubscribe the pool (a
    /// configuration bug, not a runtime condition).
    pub fn register(&mut self, tenant: u32, initial_grant_bytes: u64, slo_pct: f64) {
        self.tenants.insert(
            tenant,
            TenantSlot {
                grant_bytes: initial_grant_bytes,
                slo_pct,
                report: TenantReport::default(),
                reported: false,
                wait_rounds: 0,
                defer_rounds: 0,
            },
        );
        assert!(
            self.granted_bytes() <= self.cfg.pool_bytes,
            "initial grants oversubscribe the pool"
        );
    }

    /// Total bytes currently granted across all tenants.
    pub fn granted_bytes(&self) -> u64 {
        self.tenants.values().map(|t| t.grant_bytes).sum()
    }

    /// Pool bytes not granted to any tenant.
    pub fn unallocated_bytes(&self) -> u64 {
        self.cfg.pool_bytes - self.granted_bytes()
    }

    /// The tenant's current grant (0 for unknown tenants).
    pub fn grant_of(&self, tenant: u32) -> u64 {
        self.tenants.get(&tenant).map_or(0, |t| t.grant_bytes)
    }

    /// Rounds the tenant has waited while needy (0 when satisfied).
    pub fn wait_rounds_of(&self, tenant: u32) -> u32 {
        self.tenants.get(&tenant).map_or(0, |t| t.wait_rounds)
    }

    /// Records a tenant's latest report (overwrites the previous one; the
    /// arbiter always acts on the freshest state it has seen).
    pub fn report(&mut self, tenant: u32, report: TenantReport) {
        if let Some(slot) = self.tenants.get_mut(&tenant) {
            slot.report = report;
            slot.reported = true;
        }
    }

    /// Runs one rebalance round and returns the decisions **in
    /// application order** (each grant is immediately preceded by the
    /// reclaims that fund it).
    ///
    /// A tenant is *needy* when its reported slowdown exceeds its SLO and
    /// it has displaced demand to bring back. Needy tenants are served
    /// longest-waiter-first (ties by tenant id), one quantum each, funded
    /// from the unallocated reserve first and then from the donor with
    /// the most reclaimable capacity (idle + cold − reserved bytes,
    /// capped so a donor is never cut below its reported in-use hot
    /// footprint).
    pub fn rebalance(&mut self) -> Vec<Decision> {
        let congested = self
            .tenants
            .values()
            .any(|t| t.reported && t.report.fabric_congested);

        // Age the needy, reset the satisfied.
        let mut needy: Vec<u32> = Vec::new();
        for (&id, slot) in &mut self.tenants {
            let is_needy = slot.reported
                && slot.report.slowdown_pct > slot.slo_pct
                && slot.report.displaced_bytes > 0;
            if is_needy {
                slot.wait_rounds += 1;
                needy.push(id);
            } else {
                slot.wait_rounds = 0;
                slot.defer_rounds = 0;
            }
        }
        needy.sort_by_key(|&id| (std::cmp::Reverse(self.tenants[&id].wait_rounds), id));

        let mut decisions = Vec::new();
        for id in needy {
            let want = {
                let slot = &self.tenants[&id];
                slot.report
                    .displaced_bytes
                    .min(self.cfg.grant_quantum_bytes)
            };
            if want == 0 {
                continue;
            }
            if congested {
                let slot = self.tenants.get_mut(&id).expect("needy tenant registered");
                if slot.defer_rounds < self.cfg.max_defer_rounds {
                    slot.defer_rounds += 1;
                    decisions.push(Decision {
                        tenant: id,
                        kind: DecisionKind::Defer,
                        bytes: 0,
                        grant_after: slot.grant_bytes,
                    });
                    continue;
                }
            }

            let mut need = want;
            let mut funded = self.unallocated_bytes().min(need);
            need -= funded;

            // Fund the remainder from donors, richest-reclaimable first.
            while need > 0 {
                let donor = self
                    .tenants
                    .iter()
                    .filter(|&(&d, _)| d != id)
                    .map(|(&d, s)| (d, Self::reclaimable(s)))
                    .filter(|&(_, r)| r > 0)
                    .max_by_key(|&(d, r)| (r, std::cmp::Reverse(d)));
                let Some((donor, reclaimable)) = donor else {
                    break;
                };
                let take = reclaimable.min(need);
                let slot = self.tenants.get_mut(&donor).expect("donor registered");
                slot.grant_bytes -= take;
                // Shrink the donor's *reported* supply too, so one report
                // cannot fund two grants (no double-grant).
                let cold_cut = slot.report.cold_fast_bytes.min(take);
                slot.report.cold_fast_bytes -= cold_cut;
                slot.report.used_fast_bytes = slot.report.used_fast_bytes.saturating_sub(cold_cut);
                decisions.push(Decision {
                    tenant: donor,
                    kind: DecisionKind::Reclaim,
                    bytes: take,
                    grant_after: slot.grant_bytes,
                });
                need -= take;
                funded += take;
            }

            let slot = self.tenants.get_mut(&id).expect("needy tenant registered");
            if funded > 0 {
                slot.grant_bytes += funded;
                slot.wait_rounds = 0;
                slot.defer_rounds = 0;
                // The granted bytes answer (part of) the displaced demand.
                slot.report.displaced_bytes = slot.report.displaced_bytes.saturating_sub(funded);
                decisions.push(Decision {
                    tenant: id,
                    kind: DecisionKind::Grant,
                    bytes: funded,
                    grant_after: slot.grant_bytes,
                });
            }
        }

        debug_assert!(
            self.granted_bytes() <= self.cfg.pool_bytes,
            "arbiter oversubscribed the pool"
        );
        decisions
    }

    /// Bytes a donor can give up: idle headroom (grant − used) plus cold
    /// in-use bytes, minus what the fabric holds in flight — never
    /// cutting into the reported hot footprint, and never more than the
    /// grant itself (a report claiming more cold bytes than the tenant
    /// was ever granted must not drive the grant negative).
    fn reclaimable(slot: &TenantSlot) -> u64 {
        if !slot.reported {
            return 0;
        }
        let r = &slot.report;
        let idle = slot.grant_bytes.saturating_sub(r.used_fast_bytes);
        (idle + r.cold_fast_bytes)
            .saturating_sub(r.reserved_bytes)
            .min(slot.grant_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arb(pool: u64) -> Arbiter {
        Arbiter::new(ArbiterConfig {
            pool_bytes: pool,
            grant_quantum_bytes: 8 << 20,
            max_defer_rounds: 2,
        })
    }

    fn needy_report(displaced: u64) -> TenantReport {
        TenantReport {
            slowdown_pct: 50.0,
            displaced_bytes: displaced,
            ..TenantReport::default()
        }
    }

    #[test]
    fn grant_comes_from_unallocated_first() {
        let mut a = arb(64 << 20);
        a.register(0, 16 << 20, 3.0);
        a.register(1, 16 << 20, 3.0);
        a.report(0, needy_report(32 << 20));
        let d = a.rebalance();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].kind, DecisionKind::Grant);
        assert_eq!(d[0].bytes, 8 << 20);
        assert_eq!(a.grant_of(0), 24 << 20);
        assert_eq!(a.grant_of(1), 16 << 20);
        assert_eq!(a.granted_bytes() + a.unallocated_bytes(), 64 << 20);
    }

    #[test]
    fn reclaim_funds_grant_when_pool_exhausted_and_skips_reserved() {
        let mut a = arb(32 << 20);
        a.register(0, 8 << 20, 3.0);
        a.register(1, 24 << 20, 30.0);
        a.report(0, needy_report(32 << 20));
        a.report(
            1,
            TenantReport {
                used_fast_bytes: 24 << 20,
                cold_fast_bytes: 12 << 20,
                reserved_bytes: 6 << 20,
                ..TenantReport::default()
            },
        );
        let d = a.rebalance();
        // Reclaim precedes the grant it funds.
        assert_eq!(d[0].kind, DecisionKind::Reclaim);
        assert_eq!(d[0].tenant, 1);
        assert_eq!(d[0].bytes, 6 << 20, "cold(12M) − reserved(6M)");
        assert_eq!(d[1].kind, DecisionKind::Grant);
        assert_eq!(d[1].tenant, 0);
        assert_eq!(d[1].bytes, 6 << 20);
        assert_eq!(a.granted_bytes(), 32 << 20);
    }

    #[test]
    fn congestion_defers_then_forces_the_grant() {
        let mut a = arb(64 << 20);
        a.register(0, 8 << 20, 3.0);
        let congested = TenantReport {
            fabric_congested: true,
            ..needy_report(32 << 20)
        };
        a.report(0, congested);
        assert_eq!(a.rebalance()[0].kind, DecisionKind::Defer);
        a.report(0, congested);
        assert_eq!(a.rebalance()[0].kind, DecisionKind::Defer);
        // max_defer_rounds = 2: the third round grants despite congestion.
        a.report(0, congested);
        let d = a.rebalance();
        assert_eq!(d[0].kind, DecisionKind::Grant);
        assert_eq!(d[0].bytes, 8 << 20);
    }

    #[test]
    fn longest_waiter_is_served_first() {
        // A needy report that exposes no supply: the whole grant is hot
        // and in use, so other tenants cannot reclaim from it.
        let hot_needy = |used: u64| TenantReport {
            used_fast_bytes: used,
            ..needy_report(32 << 20)
        };
        let mut a = arb(8 << 20);
        a.register(0, 4 << 20, 3.0);
        a.register(1, 4 << 20, 3.0);
        // Nothing to give: both wait, aging each round.
        a.report(0, hot_needy(4 << 20));
        a.report(1, hot_needy(4 << 20));
        a.rebalance();
        assert_eq!(a.wait_rounds_of(0), 1);
        a.report(0, hot_needy(4 << 20));
        a.report(1, hot_needy(4 << 20));
        a.rebalance();
        assert!(a.wait_rounds_of(0) >= 2);
        let mut b = arb(16 << 20);
        b.register(0, 4 << 20, 3.0);
        b.register(1, 4 << 20, 3.0);
        b.report(1, needy_report(32 << 20));
        b.rebalance(); // tenant 1 waits... and is served from the reserve
        assert_eq!(b.grant_of(1), 12 << 20);
    }
}

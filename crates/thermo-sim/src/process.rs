//! The simulated guest process: virtual memory areas and address-space
//! layout.
//!
//! Workloads `mmap` anonymous or file-backed regions (the paper's Table 2
//! separates resident set size from file-mapped pages — NoSQL stores lean
//! heavily on the page cache, which the paper serves with `hugetmpfs`).
//! Regions are 2MB-aligned so THP can back them; actual frames are
//! allocated on first touch by the engine's demand-paging path.

use thermo_mem::{VirtAddr, HUGE_PAGE_BYTES};

/// One virtual memory area.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vma {
    /// First byte.
    pub start: VirtAddr,
    /// Length in bytes (always a multiple of 4KB).
    pub len: u64,
    /// THP-eligible (anonymous heap or hugetmpfs file mappings).
    pub thp: bool,
    /// Writable.
    pub writable: bool,
    /// Backed by a file (page-cache pages, for Table 2 accounting).
    pub file_backed: bool,
    /// Human-readable tag ("heap", "sstable-3", ...).
    pub name: String,
}

impl Vma {
    /// One past the last byte.
    pub fn end(&self) -> VirtAddr {
        VirtAddr(self.start.0 + self.len)
    }

    /// True if `va` lies inside.
    pub fn contains(&self, va: VirtAddr) -> bool {
        va >= self.start && va < self.end()
    }
}

/// The process address space: a bump allocator of 2MB-aligned VMAs.
#[derive(Debug, Default)]
pub struct Process {
    vmas: Vec<Vma>,
    next: u64,
}

/// Base of the mmap region (arbitrary, huge-aligned, well away from null).
const MMAP_BASE: u64 = 1 << 32;

impl Process {
    /// An empty address space.
    pub fn new() -> Self {
        Self {
            vmas: Vec::new(),
            next: MMAP_BASE,
        }
    }

    /// Maps a new region of `len` bytes (rounded up to 4KB) and returns its
    /// base address. Regions are 2MB-aligned and separated by a 2MB guard
    /// gap so THP windows never straddle VMAs.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn mmap(
        &mut self,
        len: u64,
        thp: bool,
        writable: bool,
        file_backed: bool,
        name: impl Into<String>,
    ) -> VirtAddr {
        assert!(len > 0, "cannot map an empty region");
        let len = (len + 4095) & !4095;
        let start = VirtAddr(self.next);
        debug_assert!(start.is_huge_aligned());
        self.vmas.push(Vma {
            start,
            len,
            thp,
            writable,
            file_backed,
            name: name.into(),
        });
        // Advance past the region plus a guard gap, re-aligned to 2MB.
        let end = start.0 + len;
        self.next = (end + 2 * HUGE_PAGE_BYTES as u64 - 1) & !(HUGE_PAGE_BYTES as u64 - 1);
        start
    }

    /// The VMA containing `va`, if any.
    pub fn find(&self, va: VirtAddr) -> Option<&Vma> {
        // VMAs are sorted by construction; binary search on start.
        let idx = self.vmas.partition_point(|v| v.start <= va);
        if idx == 0 {
            return None;
        }
        let vma = &self.vmas[idx - 1];
        vma.contains(va).then_some(vma)
    }

    /// All VMAs in address order.
    pub fn vmas(&self) -> &[Vma] {
        &self.vmas
    }

    /// Total mapped virtual bytes.
    pub fn virtual_bytes(&self) -> u64 {
        self.vmas.iter().map(|v| v.len).sum()
    }

    /// Total virtual bytes in file-backed VMAs.
    pub fn file_backed_bytes(&self) -> u64 {
        self.vmas
            .iter()
            .filter(|v| v.file_backed)
            .map(|v| v.len)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mmap_is_huge_aligned_and_disjoint() {
        let mut p = Process::new();
        let a = p.mmap(10 << 20, true, true, false, "heap");
        let b = p.mmap(3 << 20, true, true, true, "file");
        assert!(a.is_huge_aligned() && b.is_huge_aligned());
        assert!(b.0 >= a.0 + (10 << 20));
    }

    #[test]
    fn find_resolves_interior_and_rejects_gaps() {
        let mut p = Process::new();
        let a = p.mmap(4 << 20, true, true, false, "heap");
        assert_eq!(p.find(a).unwrap().name, "heap");
        assert_eq!(p.find(VirtAddr(a.0 + (4 << 20) - 1)).unwrap().name, "heap");
        assert!(p.find(VirtAddr(a.0 + (4 << 20))).is_none());
        assert!(p.find(VirtAddr(0)).is_none());
    }

    #[test]
    fn len_rounds_to_page() {
        let mut p = Process::new();
        let a = p.mmap(100, false, true, false, "tiny");
        assert_eq!(p.find(a).unwrap().len, 4096);
    }

    #[test]
    fn byte_accounting() {
        let mut p = Process::new();
        p.mmap(8 << 20, true, true, false, "heap");
        p.mmap(2 << 20, true, true, true, "file");
        assert_eq!(p.virtual_bytes(), 10 << 20);
        assert_eq!(p.file_backed_bytes(), 2 << 20);
    }

    #[test]
    fn find_with_many_vmas() {
        let mut p = Process::new();
        let bases: Vec<_> = (0..20)
            .map(|i| p.mmap(1 << 20, false, true, false, format!("r{i}")))
            .collect();
        for (i, b) in bases.iter().enumerate() {
            assert_eq!(p.find(*b).unwrap().name, format!("r{i}"));
        }
    }

    #[test]
    #[should_panic(expected = "empty region")]
    fn empty_mmap_panics() {
        Process::new().mmap(0, false, false, false, "x");
    }
}

//! Property test for the flat-leaf translation path: after any random
//! sequence of plan ops (applied through `Engine::apply_plan`, so the
//! charge-commutative window batching is on the tested path), the flat
//! leaf array must remain coherent — the linear enumeration
//! (`for_each_leaf`, what `MemoryView` shards read), the per-page walk
//! (`lookup`, what `Engine::access` resolves through), the leaf
//! counters, and a shadow model of the Thermostat page lifecycle must
//! all agree, and the structural generation stamp must move exactly
//! when translations change (split/collapse), never on flag- or
//! frame-level updates (poison, clear-A, migration).

use thermo_mem::{PageSize, VirtAddr, Vpn, PAGES_PER_HUGE};
use thermo_sim::{Engine, PlanOp, PolicyPlan, SimConfig};
use thermo_util::forall;
use thermo_util::proptest_lite::{any, range, vec_of, weighted, Strategy};

const N_HUGE: u64 = 8;

/// Shadow lifecycle state of one 2MB page (paper §3.2/§3.5).
#[derive(Debug, Clone, Copy, PartialEq)]
enum St {
    /// Unsplit, unpoisoned (hot, fast tier).
    Huge,
    /// Split into 512 children for sampling, unpoisoned.
    Split,
    /// Split, demoted to slow, all children poisoned.
    ColdSplit,
    /// Consolidated back to one huge PTE, poisoned, slow tier.
    Cold,
    /// Unsplit, poisoned in place (BadgerTrap counting).
    PoisonHuge,
}

#[derive(Debug, Clone)]
enum Op {
    Access(u8, u16, bool),
    SplitSample(u8),
    Collapse(u8),
    Demote(u8),
    Consolidate(u8),
    Promote(u8),
    Poison(u8),
    Unpoison(u8),
    TakeCounts(u8),
    ClearAccessed(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let page = || range(0u8..N_HUGE as u8);
    weighted(vec![
        (
            3,
            (page(), any::<u16>(), any::<bool>())
                .prop_map(|(p, l, w)| Op::Access(p, l, w))
                .boxed(),
        ),
        (2, page().prop_map(Op::SplitSample).boxed()),
        (2, page().prop_map(Op::Collapse).boxed()),
        (2, page().prop_map(Op::Demote).boxed()),
        (2, page().prop_map(Op::Consolidate).boxed()),
        (2, page().prop_map(Op::Promote).boxed()),
        (1, page().prop_map(Op::Poison).boxed()),
        (1, page().prop_map(Op::Unpoison).boxed()),
        (1, page().prop_map(Op::TakeCounts).boxed()),
        (1, page().prop_map(Op::ClearAccessed).boxed()),
    ])
}

fn vpn(base: VirtAddr, p: usize) -> Vpn {
    Vpn(base.vpn().0 + (p * PAGES_PER_HUGE) as u64)
}

/// The coherence invariant: every read path over the flat leaf array
/// tells the same story, and that story matches the shadow model.
fn check_coherence(engine: &Engine, base: VirtAddr, shadow: &[St; N_HUGE as usize]) {
    let pt = engine.page_table();
    let start = base.vpn();
    let n_pages = N_HUGE * PAGES_PER_HUGE as u64;

    // 1. Linear enumeration — the MemoryView read path.
    let mut leaves: Vec<(Vpn, PageSize, thermo_vm::Pte)> = Vec::new();
    pt.for_each_leaf(start, n_pages, |v, s, pte| leaves.push((v, s, *pte)));

    // 2. Leaf counters agree with both the enumeration and the shadow.
    let huge_leaves = leaves
        .iter()
        .filter(|(_, s, _)| *s == PageSize::Huge2M)
        .count() as u64;
    let small_leaves = leaves
        .iter()
        .filter(|(_, s, _)| *s == PageSize::Small4K)
        .count() as u64;
    assert_eq!(pt.mapped_huge_pages(), huge_leaves);
    assert_eq!(pt.mapped_small_pages(), small_leaves);
    let want_huge = shadow
        .iter()
        .filter(|s| matches!(s, St::Huge | St::Cold | St::PoisonHuge))
        .count() as u64;
    assert_eq!(huge_leaves, want_huge, "shadow: {shadow:?}");
    assert_eq!(
        small_leaves,
        (N_HUGE - want_huge) * PAGES_PER_HUGE as u64,
        "shadow: {shadow:?}"
    );

    // 3. Per-page walk — the Engine::access read path — agrees with the
    //    enumeration on every 4KB page: same leaf, same PTE word, and the
    //    resolved frame is the leaf's base frame plus the in-leaf index.
    let mut it = leaves.iter().peekable();
    for raw in start.0..start.0 + n_pages {
        let v = Vpn(raw);
        let m = pt.lookup(v).expect("whole range stays mapped");
        let &&(lv, ls, lpte) = it.peek().expect("leaf covers every page");
        assert_eq!(m.base_vpn, lv, "walk and enumeration disagree at {v}");
        assert_eq!(m.size, ls);
        assert_eq!(m.pte, lpte, "PTE mismatch at {v}");
        assert_eq!(m.frame_for(v), m.pte.pfn().offset(raw - lv.0));
        let covered = lv.0
            + match ls {
                PageSize::Small4K => 1,
                PageSize::Huge2M => PAGES_PER_HUGE as u64,
            };
        if raw + 1 == covered {
            it.next();
        }
    }
    assert!(it.next().is_none(), "enumeration has leaves past the range");

    // 4. Per-page shadow semantics: size and poison bit per lifecycle
    //    state (split placement poisons children; consolidation re-poisons
    //    the collapsed PTE).
    for (p, st) in shadow.iter().enumerate() {
        let m = pt.lookup(vpn(base, p)).unwrap();
        let (want_size, want_poison) = match st {
            St::Huge => (PageSize::Huge2M, false),
            St::Split => (PageSize::Small4K, false),
            St::ColdSplit => (PageSize::Small4K, true),
            St::Cold => (PageSize::Huge2M, true),
            St::PoisonHuge => (PageSize::Huge2M, true),
        };
        assert_eq!(m.size, want_size, "page {p} in {st:?}");
        assert_eq!(m.pte.poisoned(), want_poison, "page {p} in {st:?}");
    }
}

#[test]
fn flat_leaves_stay_coherent_under_plan_ops() {
    forall!(cases = 24, (ops in vec_of(op_strategy(), 1..200)) => {
        // Equal, roomy tiers: migrations never hit OOM, so every op takes
        // its documented main path and the shadow stays exact.
        let mut engine = Engine::new(SimConfig::paper_defaults(64 << 20, 64 << 20));
        let base = engine.mmap(N_HUGE * (2 << 20), true, true, false, "heap");
        for p in 0..N_HUGE {
            engine.access(base + p * (2 << 20), true);
        }
        let mut shadow = [St::Huge; N_HUGE as usize];

        for op in ops {
            // Ops are filtered to structurally legal ones (apply_plan
            // documents structural misuse as a policy bug / panic); the
            // plan still goes through the full window-batching path.
            let mut plan = PolicyPlan::new();
            // `true` when the op splits or collapses — the only
            // translation changes — so the generation stamp must move;
            // flag updates (poison/A-bits) and frame moves (migration)
            // must leave it alone.
            let mut structural = false;
            match op {
                Op::Access(p, line, write) => {
                    let off = (line as u64 * 64) % (2 << 20);
                    engine.access(base + p as u64 * (2 << 20) + off, write);
                }
                Op::SplitSample(p) => {
                    if shadow[p as usize] == St::Huge {
                        plan.push(PlanOp::SplitSample { vpn: vpn(base, p as usize) });
                        shadow[p as usize] = St::Split;
                        structural = true;
                    }
                }
                Op::Collapse(p) => {
                    if shadow[p as usize] == St::Split {
                        plan.push(PlanOp::Collapse { vpn: vpn(base, p as usize) });
                        shadow[p as usize] = St::Huge;
                        structural = true;
                    }
                }
                Op::Demote(p) => {
                    if shadow[p as usize] == St::Split {
                        plan.push(PlanOp::DemoteHuge { vpn: vpn(base, p as usize) });
                        shadow[p as usize] = St::ColdSplit;
                    }
                }
                Op::Consolidate(p) => {
                    if shadow[p as usize] == St::ColdSplit {
                        plan.push(PlanOp::ConsolidateCold { vpn: vpn(base, p as usize) });
                        shadow[p as usize] = St::Cold;
                        structural = true;
                    }
                }
                Op::Promote(p) => match shadow[p as usize] {
                    St::ColdSplit => {
                        plan.push(PlanOp::PromoteHuge {
                            vpn: vpn(base, p as usize),
                            split: true,
                        });
                        shadow[p as usize] = St::Huge;
                        structural = true; // collapses on the way up
                    }
                    St::Cold => {
                        plan.push(PlanOp::PromoteHuge {
                            vpn: vpn(base, p as usize),
                            split: false,
                        });
                        shadow[p as usize] = St::Huge;
                    }
                    _ => {}
                },
                Op::Poison(p) => {
                    if shadow[p as usize] == St::Huge {
                        plan.push(PlanOp::Poison {
                            vpn: vpn(base, p as usize),
                            size: PageSize::Huge2M,
                        });
                        shadow[p as usize] = St::PoisonHuge;
                    }
                }
                Op::Unpoison(p) => {
                    if shadow[p as usize] == St::PoisonHuge {
                        plan.push(PlanOp::UnpoisonSum {
                            vpns: vec![vpn(base, p as usize)],
                        });
                        shadow[p as usize] = St::Huge;
                    }
                }
                Op::TakeCounts(p) => {
                    if matches!(shadow[p as usize], St::PoisonHuge | St::Cold) {
                        plan.push(PlanOp::TakeCounts {
                            vpn: vpn(base, p as usize),
                            split: false,
                        });
                    }
                }
                Op::ClearAccessed(p) => {
                    let pages = match shadow[p as usize] {
                        St::Huge | St::Cold | St::PoisonHuge => {
                            vec![(vpn(base, p as usize), PageSize::Huge2M)]
                        }
                        St::Split | St::ColdSplit => (0..PAGES_PER_HUGE)
                            .map(|i| (Vpn(vpn(base, p as usize).0 + i as u64), PageSize::Small4K))
                            .collect(),
                    };
                    plan.push(PlanOp::ClearAccessed { pages });
                }
            }
            if !plan.is_empty() {
                let gen_before = engine.page_table().generation();
                engine.apply_plan(&plan);
                let gen_after = engine.page_table().generation();
                if structural {
                    assert_ne!(gen_before, gen_after, "split/collapse must bump generation");
                } else {
                    assert_eq!(
                        gen_before, gen_after,
                        "flag/frame updates must not bump generation ({op:?})"
                    );
                }
            }
            check_coherence(&engine, base, &shadow);
        }
    });
}

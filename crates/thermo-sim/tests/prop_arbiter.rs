//! Property test for the fast-tier arbiter: under random interleavings
//! of tenant reports, SLO violations, fabric congestion, and rebalance
//! rounds, the pure state machine must
//!
//! 1. conserve capacity — `Σ grants + unallocated == pool` after every
//!    operation, and every grant is fully funded by the reserve plus the
//!    reclaims emitted in the same round (no byte minted, none lost);
//! 2. never double-grant — a reclaim never takes more than the donor's
//!    freshest report supports (idle + cold − reserved), and the report
//!    is consumed as it funds grants, so one report cannot pay twice;
//! 3. never touch reserved capacity — bytes a donor reports as held by
//!    in-flight fabric transactions are excluded from every reclaim, so
//!    arbitration can never evict a page mid-transaction;
//! 4. never starve — congestion defers a needy tenant at most
//!    `max_defer_rounds` consecutive times, and whenever the reserve can
//!    fund the longest waiter outright, that tenant is served first.
//!
//! A deterministic companion test pins the bounded-wait guarantee:
//! several persistently needy tenants round-robin one donor's supply,
//! and every one of them is served within `n_needy` rounds.

use std::collections::BTreeMap;

use thermo_sim::{Arbiter, ArbiterConfig, Decision, DecisionKind, TenantReport};
use thermo_util::forall;
use thermo_util::proptest_lite::{any, range, vec_of, Strategy};

const MB: u64 = 1 << 20;
const POOL: u64 = 64 * MB;
const QUANTUM: u64 = 4 * MB;
const MAX_DEFER: u32 = 2;
/// Per-tenant slowdown SLOs: a strict victim, a lenient antagonist, and
/// two middling tenants.
const SLOS: [f64; 4] = [3.0, 30.0, 10.0, 5.0];
const GRANTS0: [u64; 4] = [8 * MB, 24 * MB, 8 * MB, 8 * MB];

#[derive(Debug, Clone)]
enum Op {
    /// Tenant posts a fresh self-report (fields in MB / deci-percent,
    /// normalized in the driver so `cold ≤ used` and `reserved ≤ used`).
    Report {
        tenant: u8,
        slowdown_dpct: u16,
        used_mb: u64,
        cold_mb: u64,
        reserved_mb: u64,
        displaced_mb: u64,
        congested: bool,
    },
    /// Run one rebalance round and audit the emitted decisions.
    Rebalance,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Nested tuples: proptest_lite implements Strategy up to arity 4.
    (
        (
            range(0u8..4),
            range(0u16..600),
            range(0u64..40),
            range(0u64..40),
        ),
        (
            range(0u64..40),
            range(0u64..64),
            any::<bool>(),
            any::<bool>(),
        ),
    )
        .prop_map(
            |(
                (tenant, slowdown_dpct, used_mb, cold_mb),
                (reserved_mb, displaced_mb, congested, rebalance),
            )| {
                if rebalance {
                    Op::Rebalance
                } else {
                    Op::Report {
                        tenant,
                        slowdown_dpct,
                        used_mb,
                        cold_mb,
                        reserved_mb,
                        displaced_mb,
                        congested,
                    }
                }
            },
        )
}

/// The test's independent mirror of arbiter state: grants plus the
/// freshest report per tenant, shrunk exactly as the arbiter consumes
/// supply. Every decision is audited against this mirror.
struct Mirror {
    grants: [u64; 4],
    reports: BTreeMap<u32, TenantReport>,
    defer_rounds: [u32; 4],
    wait_rounds: [u32; 4],
}

impl Mirror {
    fn reclaimable(&self, donor: u32) -> u64 {
        let Some(r) = self.reports.get(&donor) else {
            return 0;
        };
        let idle = self.grants[donor as usize].saturating_sub(r.used_fast_bytes);
        (idle + r.cold_fast_bytes)
            .saturating_sub(r.reserved_bytes)
            .min(self.grants[donor as usize])
    }

    fn needy(&self, t: u32) -> bool {
        self.reports
            .get(&t)
            .is_some_and(|r| r.slowdown_pct > SLOS[t as usize] && r.displaced_bytes > 0)
    }

    fn congested(&self) -> bool {
        self.reports.values().any(|r| r.fabric_congested)
    }

    /// Audits one rebalance round's decisions against the mirror, then
    /// applies them to it.
    fn audit_round(&mut self, decisions: &[Decision], unallocated_before: u64, a: &Arbiter) {
        let mut reclaimed = 0u64;
        let mut granted = 0u64;
        for d in decisions {
            let t = d.tenant as usize;
            match d.kind {
                DecisionKind::Reclaim => {
                    // Invariants 2 + 3: never more than the freshest
                    // report's idle + cold − reserved, shrinking the
                    // report as it is consumed.
                    let cap = self.reclaimable(d.tenant);
                    assert!(
                        d.bytes <= cap,
                        "reclaim of {} bytes from tenant {t} exceeds reclaimable {cap}",
                        d.bytes
                    );
                    self.grants[t] -= d.bytes;
                    let r = self.reports.get_mut(&d.tenant).expect("donor reported");
                    let cold_cut = r.cold_fast_bytes.min(d.bytes);
                    r.cold_fast_bytes -= cold_cut;
                    r.used_fast_bytes = r.used_fast_bytes.saturating_sub(cold_cut);
                    reclaimed += d.bytes;
                }
                DecisionKind::Grant => {
                    assert!(d.bytes > 0, "zero-byte grant for tenant {t}");
                    assert!(
                        d.bytes <= QUANTUM,
                        "grant of {} bytes exceeds the {QUANTUM}-byte quantum",
                        d.bytes
                    );
                    self.grants[t] += d.bytes;
                    self.defer_rounds[t] = 0;
                    self.wait_rounds[t] = 0;
                    if let Some(r) = self.reports.get_mut(&d.tenant) {
                        r.displaced_bytes = r.displaced_bytes.saturating_sub(d.bytes);
                    }
                    granted += d.bytes;
                }
                DecisionKind::Defer => {
                    // Invariant 4: at most max_defer_rounds consecutive
                    // deferrals before the grant is forced through.
                    assert_eq!(d.bytes, 0, "deferral moved bytes");
                    assert!(
                        self.defer_rounds[t] < MAX_DEFER,
                        "tenant {t} deferred more than {MAX_DEFER} consecutive rounds"
                    );
                    self.defer_rounds[t] += 1;
                }
            }
            assert_eq!(
                d.grant_after, self.grants[t],
                "tenant {t} grant_after diverged from the audited ledger"
            );
        }
        // Invariant 1: every granted byte came from the reserve or a
        // same-round reclaim.
        let drawn = unallocated_before - a.unallocated_bytes();
        assert_eq!(
            granted,
            reclaimed + drawn,
            "grants ({granted}) not funded by reclaims ({reclaimed}) + reserve draw ({drawn})"
        );
    }
}

#[test]
fn arbiter_conserves_capacity_and_honors_reserved_bytes() {
    forall!(cases = 256, (ops in vec_of(op_strategy(), 1..120)) => {
        let mut a = Arbiter::new(ArbiterConfig {
            pool_bytes: POOL,
            grant_quantum_bytes: QUANTUM,
            max_defer_rounds: MAX_DEFER,
        });
        let mut m = Mirror {
            grants: GRANTS0,
            reports: BTreeMap::new(),
            defer_rounds: [0; 4],
            wait_rounds: [0; 4],
        };
        for (t, (&g, &slo)) in GRANTS0.iter().zip(&SLOS).enumerate() {
            a.register(t as u32, g, slo);
        }

        for op in ops {
            match op {
                Op::Report {
                    tenant,
                    slowdown_dpct,
                    used_mb,
                    cold_mb,
                    reserved_mb,
                    displaced_mb,
                    congested,
                } => {
                    let used = used_mb * MB;
                    let r = TenantReport {
                        slowdown_pct: f64::from(slowdown_dpct) / 10.0,
                        used_fast_bytes: used,
                        cold_fast_bytes: (cold_mb * MB).min(used),
                        reserved_bytes: (reserved_mb * MB).min(used),
                        displaced_bytes: displaced_mb * MB,
                        fabric_congested: congested,
                    };
                    a.report(u32::from(tenant), r);
                    m.reports.insert(u32::from(tenant), r);
                }
                Op::Rebalance => {
                    let unallocated_before = a.unallocated_bytes();
                    // Pre-round view: who is needy, and who has waited
                    // longest (the arbiter ages before serving, so the
                    // order key is prev_wait + 1, ties by id — prev_wait
                    // already orders it).
                    let needy: Vec<u32> = (0..4).filter(|&t| m.needy(t)).collect();
                    let congested = m.congested();
                    let longest = needy
                        .iter()
                        .copied()
                        .max_by_key(|&t| (m.wait_rounds[t as usize], std::cmp::Reverse(t)));

                    let decisions = a.rebalance();
                    m.audit_round(&decisions, unallocated_before, &a);

                    // Invariant 4 (service order): when the reserve alone
                    // can fund the longest waiter and nothing defers it,
                    // the very first decision is its grant.
                    if let Some(first) = longest {
                        let want = m.reports[&first].displaced_bytes.min(QUANTUM);
                        // audit_round already consumed the grant from the
                        // mirror; `want` here is post-round, so only
                        // assert when the round clearly had the supply.
                        if !congested && want > 0 && unallocated_before >= QUANTUM {
                            match decisions.first() {
                                Some(d) => {
                                    assert_eq!(d.kind, DecisionKind::Grant);
                                    assert_eq!(
                                        d.tenant, first,
                                        "longest waiter {first} was not served first"
                                    );
                                }
                                None => panic!("needy tenant {first} with reserve supply got no decision"),
                            }
                        }
                    }

                    // Track waits the way the arbiter does: needy tenants
                    // not granted this round age; the rest reset.
                    for t in 0..4u32 {
                        let granted_now = decisions
                            .iter()
                            .any(|d| d.tenant == t && d.kind == DecisionKind::Grant);
                        if needy.contains(&t) && !granted_now {
                            m.wait_rounds[t as usize] += 1;
                        } else {
                            m.wait_rounds[t as usize] = 0;
                        }
                        if !needy.contains(&t) {
                            m.defer_rounds[t as usize] = 0;
                        }
                    }
                }
            }
            // Invariant 1 after every op: the books always balance and
            // match the audited ledger.
            assert_eq!(
                a.granted_bytes() + a.unallocated_bytes(),
                POOL,
                "capacity not conserved"
            );
            for t in 0..4u32 {
                assert_eq!(a.grant_of(t), m.grants[t as usize], "tenant {t} ledger drift");
            }
        }
    });
}

/// Bounded wait: with one rich donor and three persistently needy
/// tenants, every needy tenant is served within `n_needy` rounds —
/// longest-waiter-first round-robins the supply instead of letting the
/// lowest id win every time.
#[test]
fn persistent_need_with_supply_is_served_within_bounded_rounds() {
    let mut a = Arbiter::new(ArbiterConfig {
        pool_bytes: POOL,
        grant_quantum_bytes: QUANTUM,
        max_defer_rounds: MAX_DEFER,
    });
    // Tenant 0 is the donor holding the whole pool; 1–3 are needy.
    a.register(0, POOL, 30.0);
    for t in 1..4u32 {
        a.register(t, 0, 3.0);
    }

    let donor_report = |grant: u64| TenantReport {
        used_fast_bytes: grant,
        cold_fast_bytes: grant / 2,
        ..TenantReport::default()
    };
    let needy_report = TenantReport {
        slowdown_pct: 20.0,
        displaced_bytes: 32 * MB,
        ..TenantReport::default()
    };

    let mut first_served: BTreeMap<u32, usize> = BTreeMap::new();
    for round in 0..4 {
        a.report(0, donor_report(a.grant_of(0)));
        for t in 1..4u32 {
            a.report(t, needy_report);
        }
        for d in a.rebalance() {
            if d.kind == DecisionKind::Grant {
                first_served.entry(d.tenant).or_insert(round);
            }
        }
        assert_eq!(a.granted_bytes() + a.unallocated_bytes(), POOL);
    }
    for t in 1..4u32 {
        assert!(
            first_served.contains_key(&t),
            "tenant {t} starved: never granted in 4 rounds with ample supply"
        );
        assert!(
            a.grant_of(t) >= QUANTUM,
            "tenant {t} ended below one quantum"
        );
    }
}

//! Property test: migration never leaves a VPN mapped in two tiers and
//! never leaks or double-books physical frames, even when the slow tier is
//! too small and migrations fail with `OutOfMemory` mid-storm.
//!
//! The per-tier frame accounting (`capacity - free_bytes`) must equal the
//! per-tier footprint observed by walking the page table; if a migration
//! ever left a page's old frame allocated, or mapped a page while its frame
//! was still booked in the source tier, the two sides would disagree.

use thermo_mem::{Tier, VirtAddr, Vpn, PAGES_PER_HUGE};
use thermo_sim::{Engine, SimConfig};
use thermo_util::forall;
use thermo_util::proptest_lite::{any, range, vec_of, weighted, Strategy};

const N_HUGE: u64 = 8;
const FAST_BYTES: u64 = 64 << 20;
// Room for only 3 of the 8 huge pages: migrations to slow regularly OOM.
const SLOW_BYTES: u64 = 3 * (2 << 20);

#[derive(Debug, Clone)]
enum Op {
    MigrateHuge(u8, bool),       // (page, to_slow)
    MigrateChild(u8, u16, bool), // (page, child, to_slow)
    MigrateSplit(u8, bool),      // split-huge bulk migration
    Split(u8),
    Collapse(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    weighted(vec![
        (
            3,
            (range(0u8..N_HUGE as u8), any::<bool>())
                .prop_map(|(p, s)| Op::MigrateHuge(p, s))
                .boxed(),
        ),
        (
            3,
            (
                range(0u8..N_HUGE as u8),
                range(0u16..PAGES_PER_HUGE as u16),
                any::<bool>(),
            )
                .prop_map(|(p, c, s)| Op::MigrateChild(p, c, s))
                .boxed(),
        ),
        (
            1,
            (range(0u8..N_HUGE as u8), any::<bool>())
                .prop_map(|(p, s)| Op::MigrateSplit(p, s))
                .boxed(),
        ),
        (2, range(0u8..N_HUGE as u8).prop_map(Op::Split).boxed()),
        (2, range(0u8..N_HUGE as u8).prop_map(Op::Collapse).boxed()),
    ])
}

/// Frame accounting cross-check: what the allocator booked per tier must
/// equal what the page table maps per tier — byte for byte.
fn assert_single_tier_residency(engine: &mut Engine) {
    let fb = engine.footprint_breakdown();
    let fast_used = FAST_BYTES - engine.free_bytes(Tier::Fast);
    let slow_used = SLOW_BYTES - engine.free_bytes(Tier::Slow);
    assert_eq!(
        fb.huge_fast + fb.small_fast,
        fast_used,
        "fast tier books ≠ mapped bytes"
    );
    assert_eq!(
        fb.huge_slow + fb.small_slow,
        slow_used,
        "slow tier books ≠ mapped bytes"
    );
}

#[test]
fn migration_keeps_each_vpn_in_exactly_one_tier() {
    forall!(cases = 32, (ops in vec_of(op_strategy(), 1..200)) => {
        let mut engine = Engine::new(SimConfig::paper_defaults(FAST_BYTES, SLOW_BYTES));
        let base = engine.mmap(N_HUGE * (2 << 20), true, true, false, "heap");
        for p in 0..N_HUGE {
            engine.access(base + p * (2 << 20), true);
        }
        let mut split = [false; N_HUGE as usize];

        for op in ops {
            match op {
                Op::MigrateHuge(p, to_slow) => {
                    let p = p as usize;
                    if !split[p] {
                        let target = tier(to_slow);
                        let before = engine.tier_of_vpn(vpn(base, p, 0));
                        match engine.migrate_page(vpn(base, p, 0), target) {
                            Ok(()) => {
                                assert_eq!(engine.tier_of_vpn(vpn(base, p, 0)), Some(target));
                            }
                            Err(_) => {
                                // AlreadyInTier or OutOfMemory: no effect.
                                assert_eq!(engine.tier_of_vpn(vpn(base, p, 0)), before);
                            }
                        }
                    }
                }
                Op::MigrateChild(p, c, to_slow) => {
                    let (p, c) = (p as usize, c as usize);
                    if split[p] {
                        let target = tier(to_slow);
                        let v = vpn(base, p, c);
                        let before = engine.tier_of_vpn(v);
                        match engine.migrate_page(v, target) {
                            Ok(()) => assert_eq!(engine.tier_of_vpn(v), Some(target)),
                            Err(_) => assert_eq!(engine.tier_of_vpn(v), before),
                        }
                    }
                }
                Op::MigrateSplit(p, to_slow) => {
                    let p = p as usize;
                    if split[p] {
                        let target = tier(to_slow);
                        // First child already there → AlreadyInTier; slow
                        // tier lacking a huge frame → OutOfMemory. Both
                        // must leave every child where it was... which the
                        // accounting check below verifies globally.
                        if engine.migrate_split_huge(vpn(base, p, 0), target).is_ok() {
                            for c in 0..PAGES_PER_HUGE {
                                assert_eq!(engine.tier_of_vpn(vpn(base, p, c)), Some(target));
                            }
                        }
                    }
                }
                Op::Split(p) => {
                    let p = p as usize;
                    if !split[p] {
                        engine.split_huge(vpn(base, p, 0)).unwrap();
                        split[p] = true;
                    }
                }
                Op::Collapse(p) => {
                    let p = p as usize;
                    // Collapse requires physical contiguity, which child
                    // migrations break; only collapse when all children
                    // still share one tier AND the mapping is contiguous.
                    if split[p] && engine.collapse_huge(vpn(base, p, 0)).is_ok() {
                        split[p] = false;
                    }
                }
            }
            assert_single_tier_residency(&mut engine);
        }

        // Every VPN still translates to exactly one tier.
        for p in 0..N_HUGE as usize {
            for c in 0..PAGES_PER_HUGE {
                assert!(engine.tier_of_vpn(vpn(base, p, c)).is_some(), "page lost its mapping");
            }
        }
    });
}

fn tier(to_slow: bool) -> Tier {
    if to_slow {
        Tier::Slow
    } else {
        Tier::Fast
    }
}

fn vpn(base: VirtAddr, p: usize, child: usize) -> Vpn {
    Vpn(base.vpn().0 + (p * PAGES_PER_HUGE + child) as u64)
}

//! Property test: the engine never loses consistency under arbitrary
//! interleavings of application accesses and kernel operations (split,
//! collapse, poison, unpoison, migrate) — the exact operations Thermostat
//! performs concurrently with the app.

use thermo_mem::{PageSize, Tier, VirtAddr, PAGES_PER_HUGE};
use thermo_sim::{Engine, SimConfig};
use thermo_util::forall;
use thermo_util::proptest_lite::{any, range, vec_of, weighted, Strategy};

const N_HUGE: u64 = 8;

#[derive(Debug, Clone)]
enum Op {
    Access(u16, u16), // (huge page, line within)
    Split(u8),
    Collapse(u8),
    Poison(u8),
    Unpoison(u8),
    Migrate(u8, bool), // (page, to_slow)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    weighted(vec![
        (
            4,
            (range(0u16..N_HUGE as u16), any::<u16>())
                .prop_map(|(p, l)| Op::Access(p, l))
                .boxed(),
        ),
        (1, range(0u8..N_HUGE as u8).prop_map(Op::Split).boxed()),
        (1, range(0u8..N_HUGE as u8).prop_map(Op::Collapse).boxed()),
        (1, range(0u8..N_HUGE as u8).prop_map(Op::Poison).boxed()),
        (1, range(0u8..N_HUGE as u8).prop_map(Op::Unpoison).boxed()),
        (
            1,
            (range(0u8..N_HUGE as u8), any::<bool>())
                .prop_map(|(p, s)| Op::Migrate(p, s))
                .boxed(),
        ),
    ])
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum PageState {
    Huge,
    Split,
}

#[test]
fn engine_state_survives_arbitrary_kernel_ops() {
    forall!(cases = 32, (ops in vec_of(op_strategy(), 1..300)) => {
        let mut engine = Engine::new(SimConfig::paper_defaults(64 << 20, 64 << 20));
        let base = engine.mmap(N_HUGE * (2 << 20), true, true, false, "heap");
        for p in 0..N_HUGE {
            engine.access(base + p * (2 << 20), true);
        }
        let rss = engine.rss_bytes();
        let mut state = [PageState::Huge; N_HUGE as usize];
        let mut poisoned = [false; N_HUGE as usize];

        for op in ops {
            match op {
                Op::Access(p, l) => {
                    let va = base + (p as u64) * (2 << 20) + (l as u64 * 64) % (2 << 20);
                    engine.access(va, l % 3 == 0);
                }
                Op::Split(p) => {
                    let p = p as usize;
                    // Splitting a poisoned huge page propagates poison to
                    // children, which would strand the trap counter; the
                    // daemon never does that, so neither does the model.
                    if state[p] == PageState::Huge && !poisoned[p] {
                        engine.split_huge(vpn(base, p)).unwrap();
                        state[p] = PageState::Split;
                    }
                }
                Op::Collapse(p) => {
                    let p = p as usize;
                    if state[p] == PageState::Split {
                        engine.collapse_huge(vpn(base, p)).unwrap();
                        state[p] = PageState::Huge;
                    }
                }
                Op::Poison(p) => {
                    let p = p as usize;
                    if state[p] == PageState::Huge && !poisoned[p] {
                        engine.poison_page(vpn(base, p), PageSize::Huge2M);
                        poisoned[p] = true;
                    }
                }
                Op::Unpoison(p) => {
                    let p = p as usize;
                    if poisoned[p] {
                        engine.unpoison_page(vpn(base, p));
                        poisoned[p] = false;
                    }
                }
                Op::Migrate(p, to_slow) => {
                    let p = p as usize;
                    if state[p] == PageState::Huge {
                        let target = if to_slow { Tier::Slow } else { Tier::Fast };
                        // AlreadyInTier is fine; OOM cannot happen at this size.
                        let _ = engine.migrate_page(vpn(base, p), target);
                    }
                }
            }
            // Invariants after every operation:
            assert_eq!(engine.rss_bytes(), rss, "RSS must be conserved");
            let fb = engine.footprint_breakdown();
            assert_eq!(fb.total(), rss, "breakdown must cover the footprint");
            // Every page still translates, with the state we expect.
            for (i, st) in state.iter().enumerate() {
                let m = engine.page_table().lookup(vpn(base, i)).expect("page mapped");
                let expect = if *st == PageState::Huge { PageSize::Huge2M } else { PageSize::Small4K };
                assert_eq!(m.size, expect);
                assert_eq!(m.pte.poisoned(), poisoned[i]);
            }
        }

        // Accesses after the storm still work and produce sane latencies.
        for p in 0..N_HUGE {
            let lat = engine.access(base + p * (2 << 20) + 64, false);
            assert!(lat < 1_000_000, "latency {lat}ns is absurd");
        }
    });
}

fn vpn(base: VirtAddr, p: usize) -> thermo_mem::Vpn {
    thermo_mem::Vpn(base.vpn().0 + (p * PAGES_PER_HUGE) as u64)
}

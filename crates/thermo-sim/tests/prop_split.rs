//! Property test for the §6 split-placement (4KB-child) path under
//! fragmentation, mirroring the invariant style of `prop_migrate.rs`.
//!
//! The daemon's split placement keeps a hot page's accessed children in
//! fast memory and scatters the cold children into the slow tier, which
//! fragments the slow allocator's free lists; later whole-page demotions
//! then need a contiguous huge frame and must fail cleanly. After every
//! operation three invariants hold:
//!
//! 1. **No VPN double-booked across tiers** — per-tier allocator books
//!    equal the bytes the page table maps in that tier, exactly;
//! 2. **Children cover exactly the parent's range** — a split page's 512
//!    children all translate, sum to one huge page of mapped bytes, and
//!    the total mapped footprint never changes;
//! 3. **Collapse restores a whole huge page** — when a collapse
//!    succeeds, every child translates to the same tier as the base and
//!    the page is huge again in the footprint breakdown.

use thermo_mem::{Tier, VirtAddr, Vpn, PAGES_PER_HUGE};
use thermo_sim::{Engine, SimConfig};
use thermo_util::forall;
use thermo_util::proptest_lite::{any, range, vec_of, weighted, Strategy};

const N_HUGE: u64 = 8;
const HUGE_BYTES: u64 = 2 << 20;
const FAST_BYTES: u64 = 64 << 20;
// Room for only 3 of the 8 huge pages: child placements fill the slow
// tier piecemeal and whole-page migrations regularly OOM or land on a
// fragmented free list.
const SLOW_BYTES: u64 = 3 * HUGE_BYTES;

#[derive(Debug, Clone)]
enum Op {
    /// Split a page, then place every 16th-stride child from `mask`'s
    /// offset into the slow tier — the §6 cold-children placement.
    SplitPlace(u8, u8),
    /// Bring one split-placed child back to fast (the §3.5 correction).
    PromoteChild(u8, u16),
    /// Demote one child to slow (fragmentation churn).
    DemoteChild(u8, u16),
    /// Whole-page split migration toward a tier.
    MigrateSplit(u8, bool),
    /// Try to fold the children back into a huge page.
    Collapse(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    weighted(vec![
        (
            3,
            (range(0u8..N_HUGE as u8), any::<u8>())
                .prop_map(|(p, m)| Op::SplitPlace(p, m))
                .boxed(),
        ),
        (
            2,
            (range(0u8..N_HUGE as u8), range(0u16..PAGES_PER_HUGE as u16))
                .prop_map(|(p, c)| Op::PromoteChild(p, c))
                .boxed(),
        ),
        (
            2,
            (range(0u8..N_HUGE as u8), range(0u16..PAGES_PER_HUGE as u16))
                .prop_map(|(p, c)| Op::DemoteChild(p, c))
                .boxed(),
        ),
        (
            1,
            (range(0u8..N_HUGE as u8), any::<bool>())
                .prop_map(|(p, s)| Op::MigrateSplit(p, s))
                .boxed(),
        ),
        (2, range(0u8..N_HUGE as u8).prop_map(Op::Collapse).boxed()),
    ])
}

/// Invariant 1: frame accounting cross-check — what the allocator booked
/// per tier must equal what the page table maps per tier, byte for byte.
fn assert_single_tier_residency(engine: &mut Engine) {
    let fb = engine.footprint_breakdown();
    let fast_used = FAST_BYTES - engine.free_bytes(Tier::Fast);
    let slow_used = SLOW_BYTES - engine.free_bytes(Tier::Slow);
    assert_eq!(
        fb.huge_fast + fb.small_fast,
        fast_used,
        "fast tier books ≠ mapped bytes"
    );
    assert_eq!(
        fb.huge_slow + fb.small_slow,
        slow_used,
        "slow tier books ≠ mapped bytes"
    );
}

/// Invariant 2: a split parent's children cover exactly its 2MB range —
/// every child translates, and their mapped bytes sum to one huge page.
fn assert_children_cover_parent(engine: &Engine, base: VirtAddr, p: usize) {
    let mut mapped = 0u64;
    for c in 0..PAGES_PER_HUGE {
        assert!(
            engine.tier_of_vpn(vpn(base, p, c)).is_some(),
            "child {c} of split page {p} lost its mapping"
        );
        mapped += 4096;
    }
    assert_eq!(mapped, HUGE_BYTES, "children must cover the parent range");
}

#[test]
fn split_placement_under_fragmentation_keeps_invariants() {
    forall!(cases = 32, (ops in vec_of(op_strategy(), 1..200)) => {
        let mut engine = Engine::new(SimConfig::paper_defaults(FAST_BYTES, SLOW_BYTES));
        let base = engine.mmap(N_HUGE * HUGE_BYTES, true, true, false, "heap");
        for p in 0..N_HUGE {
            engine.access(base + p * HUGE_BYTES, true);
        }
        let total_mapped = {
            let fb = engine.footprint_breakdown();
            fb.total()
        };
        let mut split = [false; N_HUGE as usize];

        for op in ops {
            match op {
                Op::SplitPlace(p, mask) => {
                    let p = p as usize;
                    if !split[p] {
                        engine.split_huge(vpn(base, p, 0)).unwrap();
                        split[p] = true;
                    }
                    // Place a pseudo-cold subset: children congruent to
                    // mask mod 16 go slow; OOM means the child stays put.
                    for c in ((mask as usize % 16)..PAGES_PER_HUGE).step_by(16) {
                        let v = vpn(base, p, c);
                        let before = engine.tier_of_vpn(v);
                        match engine.migrate_page(v, Tier::Slow) {
                            Ok(()) => assert_eq!(engine.tier_of_vpn(v), Some(Tier::Slow)),
                            Err(_) => assert_eq!(engine.tier_of_vpn(v), before),
                        }
                    }
                }
                Op::PromoteChild(p, c) | Op::DemoteChild(p, c) => {
                    let (p, c) = (p as usize, c as usize);
                    if split[p] {
                        let target = if matches!(op, Op::PromoteChild(..)) {
                            Tier::Fast
                        } else {
                            Tier::Slow
                        };
                        let v = vpn(base, p, c);
                        let before = engine.tier_of_vpn(v);
                        match engine.migrate_page(v, target) {
                            Ok(()) => assert_eq!(engine.tier_of_vpn(v), Some(target)),
                            Err(_) => assert_eq!(engine.tier_of_vpn(v), before),
                        }
                    }
                }
                Op::MigrateSplit(p, to_slow) => {
                    let p = p as usize;
                    if split[p] {
                        let target = if to_slow { Tier::Slow } else { Tier::Fast };
                        if engine.migrate_split_huge(vpn(base, p, 0), target).is_ok() {
                            for c in 0..PAGES_PER_HUGE {
                                assert_eq!(engine.tier_of_vpn(vpn(base, p, c)), Some(target));
                            }
                        }
                    }
                }
                Op::Collapse(p) => {
                    let p = p as usize;
                    if split[p] && engine.collapse_huge(vpn(base, p, 0)).is_ok() {
                        split[p] = false;
                        // Invariant 3: a successful collapse restores one
                        // whole huge page, uniformly in the base's tier.
                        let tier = engine.tier_of_vpn(vpn(base, p, 0));
                        assert!(tier.is_some(), "collapsed page must map");
                        for c in 0..PAGES_PER_HUGE {
                            assert_eq!(
                                engine.tier_of_vpn(vpn(base, p, c)),
                                tier,
                                "collapse left child {c} in a different tier"
                            );
                        }
                    }
                }
            }

            assert_single_tier_residency(&mut engine);
            for p in 0..N_HUGE as usize {
                if split[p] {
                    assert_children_cover_parent(&engine, base, p);
                }
            }
            // The workload never unmaps: split/collapse/placement must
            // conserve the total mapped footprint exactly.
            let fb = engine.footprint_breakdown();
            assert_eq!(fb.total(), total_mapped, "mapped footprint changed");
        }

        // Wind-down: promote every split child home. The fast tier has
        // room for the whole footprint, so each promotion must land (or
        // already be there); collapse may still fail when per-child
        // migrations left the physical frames non-contiguous — that is
        // fine, the range just stays mapped as 4KB pages in fast memory.
        for p in 0..N_HUGE as usize {
            if !split[p] {
                continue;
            }
            for c in 0..PAGES_PER_HUGE {
                let _ = engine.migrate_page(vpn(base, p, c), Tier::Fast);
                assert_eq!(
                    engine.tier_of_vpn(vpn(base, p, c)),
                    Some(Tier::Fast),
                    "fast tier has room: promotion of child {c} must succeed"
                );
            }
            if engine.collapse_huge(vpn(base, p, 0)).is_ok() {
                split[p] = false;
            }
            assert_children_cover_parent(&engine, base, p);
        }
        assert_single_tier_residency(&mut engine);
        let fb = engine.footprint_breakdown();
        assert_eq!(fb.total(), total_mapped, "wind-down lost mapped bytes");
    });
}

fn vpn(base: VirtAddr, p: usize, child: usize) -> Vpn {
    Vpn(base.vpn().0 + (p * PAGES_PER_HUGE + child) as u64)
}

//! Property test for the transactional migration fabric: under random
//! interleavings of application accesses, begin/commit/abort, compute
//! gaps, and structural invalidation (poison), the fabric must
//!
//! 1. never lose or duplicate residency — the allocator's per-tier books
//!    equal the page table's per-tier mapped bytes after every op (the
//!    copy is metadata-only until commit);
//! 2. resolve every begun transaction to exactly one of commit/abort;
//! 3. never charge a link more than its capacity per tick — the peak
//!    observed copy rate stays within the configured bandwidth.

use thermo_mem::{PageSize, Tier, VirtAddr, Vpn, PAGES_PER_HUGE};
use thermo_sim::{Engine, FabricConfig, OpOutcome, PlanOp, PolicyPlan, SimConfig};
use thermo_util::forall;
use thermo_util::proptest_lite::{any, range, vec_of, weighted, Strategy};

const N_HUGE: u64 = 6;
const FAST_BYTES: u64 = 64 << 20;
// Room for only 2 of the 6 huge pages: commits toward slow regularly OOM,
// which must resolve as clean aborts.
const SLOW_BYTES: u64 = 2 * (2 << 20);
// Narrow enough that copies span many ops (aborts get a real window),
// wide enough that commits do land.
const LINK_BW: u64 = 200_000_000;

#[derive(Debug, Clone)]
enum Op {
    /// Touch `(page, child)`, optionally as a write (writes during a copy
    /// must abort-and-retry the transaction, never corrupt it).
    Access(u8, u16, bool),
    /// Open a transaction moving `page` to the opposite tier.
    Begin(u8),
    /// Try to commit the `k % live`-th open transaction.
    Commit(u8),
    /// Abort the `k % live`-th open transaction.
    Abort(u8),
    /// Let virtual time pass without touching memory.
    Compute(u32),
    /// Poison `page` — structural invalidation of any in-flight copy.
    Poison(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let page = || range(0u8..N_HUGE as u8);
    weighted(vec![
        (
            5,
            (page(), range(0u16..PAGES_PER_HUGE as u16), any::<bool>())
                .prop_map(|(p, c, w)| Op::Access(p, c, w))
                .boxed(),
        ),
        (3, page().prop_map(Op::Begin).boxed()),
        (3, any::<u8>().prop_map(Op::Commit).boxed()),
        (1, any::<u8>().prop_map(Op::Abort).boxed()),
        (3, range(0u32..500_000).prop_map(Op::Compute).boxed()),
        (1, page().prop_map(Op::Poison).boxed()),
    ])
}

/// Invariant 1: the allocator's books equal the page table's mapped
/// bytes per tier. A fabric that held frames for in-flight copies, or a
/// commit that leaked the source frame, would break this.
fn assert_single_tier_residency(engine: &mut Engine) {
    let fb = engine.footprint_breakdown();
    let fast_used = FAST_BYTES - engine.free_bytes(Tier::Fast);
    let slow_used = SLOW_BYTES - engine.free_bytes(Tier::Slow);
    assert_eq!(
        fb.huge_fast + fb.small_fast,
        fast_used,
        "fast tier books ≠ mapped bytes"
    );
    assert_eq!(
        fb.huge_slow + fb.small_slow,
        slow_used,
        "slow tier books ≠ mapped bytes"
    );
}

fn vpn(base: VirtAddr, p: usize) -> Vpn {
    Vpn(base.vpn().0 + (p * PAGES_PER_HUGE) as u64)
}

#[test]
fn fabric_transactions_preserve_residency_and_resolve_exactly_once() {
    forall!(cases = 256, (ops in vec_of(op_strategy(), 1..120)) => {
        let mut cfg = SimConfig::paper_defaults(FAST_BYTES, SLOW_BYTES);
        cfg.fabric = FabricConfig {
            enabled: true,
            link_bandwidth_bytes_per_sec: LINK_BW,
            ..FabricConfig::default()
        };
        let mut engine = Engine::new(cfg);
        let base = engine.mmap(N_HUGE * (2 << 20), true, true, false, "heap");
        for p in 0..N_HUGE {
            engine.access(base + p * (2 << 20), true);
        }
        // Open transactions as (txn id, page index); at most one per page.
        let mut live: Vec<(u64, usize)> = Vec::new();

        for op in ops {
            match op {
                Op::Access(p, c, write) => {
                    let addr = base + (p as u64) * (2 << 20) + (c as u64) * 4096;
                    engine.access(addr, write);
                }
                Op::Begin(p) => {
                    let p = p as usize;
                    if live.iter().any(|&(_, lp)| lp == p) {
                        continue; // one transaction per page
                    }
                    let v = vpn(base, p);
                    let target = match engine.tier_of_vpn(v) {
                        Some(Tier::Fast) => Tier::Slow,
                        Some(Tier::Slow) => Tier::Fast,
                        None => panic!("page {p} lost its mapping"),
                    };
                    let mut plan = PolicyPlan::new();
                    plan.push(PlanOp::BeginMigrate { vpn: v, target });
                    let receipt = engine.apply_plan(&plan);
                    let OpOutcome::Begun(id) = receipt.outcomes()[0] else {
                        panic!("BeginMigrate must return Begun");
                    };
                    live.push((id, p));
                }
                Op::Commit(k) => {
                    if live.is_empty() {
                        continue;
                    }
                    let idx = k as usize % live.len();
                    let (id, _) = live[idx];
                    let mut plan = PolicyPlan::new();
                    plan.push(PlanOp::CommitMigrate { txn: id });
                    let receipt = engine.apply_plan(&plan);
                    match &receipt.outcomes()[0] {
                        // Resolved: landed, OOM-aborted, or failed-aborted.
                        OpOutcome::Done
                        | OpOutcome::DemoteOom
                        | OpOutcome::PromoteOom
                        | OpOutcome::AbortedTxn => {
                            live.remove(idx);
                        }
                        OpOutcome::Pending => {}
                        other => panic!("CommitMigrate returned {other:?}"),
                    }
                }
                Op::Abort(k) => {
                    if live.is_empty() {
                        continue;
                    }
                    let idx = k as usize % live.len();
                    let (id, _) = live[idx];
                    let mut plan = PolicyPlan::new();
                    plan.push(PlanOp::AbortMigrate { txn: id });
                    let receipt = engine.apply_plan(&plan);
                    assert_eq!(receipt.outcomes()[0], OpOutcome::Done);
                    live.remove(idx);
                }
                Op::Compute(ns) => engine.advance_compute(ns as u64),
                Op::Poison(p) => {
                    let mut plan = PolicyPlan::new();
                    plan.push(PlanOp::Poison {
                        vpn: vpn(base, p as usize),
                        size: PageSize::Huge2M,
                    });
                    engine.apply_plan(&plan);
                    // The overlapping transaction (if any) is now failed
                    // but must still resolve via commit/abort — keep it.
                }
            }
            assert_single_tier_residency(&mut engine);
            // Invariant 3: the copy engine never exceeds link capacity.
            let stats = engine.fabric_stats();
            assert!(
                stats.peak_bytes_per_sec <= LINK_BW,
                "peak copy rate {} exceeds link bandwidth {LINK_BW}",
                stats.peak_bytes_per_sec
            );
        }

        // Invariant 2: every begun transaction resolves to exactly one of
        // commit/abort. Drain the stragglers, then balance the books.
        for (id, _) in live {
            let mut plan = PolicyPlan::new();
            plan.push(PlanOp::AbortMigrate { txn: id });
            assert_eq!(engine.apply_plan(&plan).outcomes()[0], OpOutcome::Done);
        }
        let stats = engine.fabric_stats();
        assert_eq!(engine.fabric().in_flight(), 0, "unresolved transactions");
        assert_eq!(
            stats.begun,
            stats.committed + stats.aborted,
            "begun must equal committed + aborted once drained"
        );
        for p in 0..N_HUGE as usize {
            assert!(
                engine.tier_of_vpn(vpn(base, p)).is_some(),
                "page {p} lost its mapping"
            );
        }
    });
}

//! Fixture tests: each known-bad snippet in `tests/fixtures/` must produce
//! exactly the expected `(lint, line, col)` findings when linted under a
//! synthetic workspace path that puts it in the relevant scope. The files
//! live in a subdirectory so cargo never compiles them — they are data.

use thermo_lint::{lint_files, lint_source, Finding};

/// The `(lint, line, col)` identity of every finding, sorted.
fn keys(findings: &[Finding]) -> Vec<(String, u32, u32)> {
    let mut keys: Vec<_> = findings
        .iter()
        .map(|f| (f.lint.clone(), f.line, f.col))
        .collect();
    keys.sort();
    keys
}

fn expect(fixture: &str, rel_path: &str, want: &[(&str, u32, u32)]) {
    let findings = lint_source(rel_path, fixture);
    let mut want: Vec<(String, u32, u32)> = want
        .iter()
        .map(|(l, n, c)| (l.to_string(), *n, *c))
        .collect();
    want.sort();
    assert_eq!(
        keys(&findings),
        want,
        "unexpected findings for {rel_path}: {findings:#?}"
    );
}

#[test]
fn d1_unordered_iteration() {
    expect(
        include_str!("fixtures/d1_unordered.rs"),
        "crates/thermo-sim/src/fixture.rs",
        &[
            ("unordered_iteration", 2, 23),
            ("unordered_iteration", 6, 13),
            ("unordered_iteration", 10, 33),
            ("unordered_iteration", 12, 23),
        ],
    );
}

#[test]
fn d1_out_of_scope_in_infra_crate() {
    // The same file under thermo-util (infrastructure) is out of D1 scope.
    expect(
        include_str!("fixtures/d1_unordered.rs"),
        "crates/thermo-util/src/fixture.rs",
        &[],
    );
}

#[test]
fn d2_ambient_nondeterminism() {
    expect(
        include_str!("fixtures/d2_ambient.rs"),
        "crates/thermo-sim/src/fixture.rs",
        &[
            ("ambient_nondeterminism", 2, 16),
            ("ambient_nondeterminism", 4, 24),
            ("ambient_nondeterminism", 6, 21),
            ("ambient_nondeterminism", 7, 20),
            ("ambient_nondeterminism", 8, 16),
        ],
    );
}

#[test]
fn d2_allowlisted_in_bench() {
    expect(
        include_str!("fixtures/d2_ambient.rs"),
        "crates/thermo-bench/src/fixture.rs",
        &[],
    );
}

#[test]
fn d3_rng_containment() {
    expect(
        include_str!("fixtures/d3_rng.rs"),
        "crates/thermostat/src/fixture.rs",
        &[("rng_containment", 6, 9), ("rng_containment", 10, 23)],
    );
}

#[test]
fn d3_decide_rs_is_the_legal_draw_site() {
    // Draw methods are legal in decide.rs; so is seed derivation.
    expect(
        include_str!("fixtures/d3_rng.rs"),
        "crates/thermostat/src/daemon/decide.rs",
        &[],
    );
}

#[test]
fn fabric_retry_loops_stay_deterministic() {
    // Linted under the real fabric module path: the fabric's abort/retry
    // backoff must stay inside D2 (no ambient clocks) and D3 (no ad-hoc
    // RNG draws) scope — a jittered retry loop is flagged on both counts.
    expect(
        include_str!("fixtures/fab_retry.rs"),
        "crates/thermo-sim/src/fabric.rs",
        &[
            ("ambient_nondeterminism", 8, 30),
            ("rng_containment", 9, 22),
        ],
    );
}

#[test]
fn s1_seam_enforcement() {
    expect(
        include_str!("fixtures/s1_seam.rs"),
        "crates/thermo-kstaled/src/fixture.rs",
        &[
            ("seam_enforcement", 6, 12),
            ("seam_enforcement", 7, 15),
            ("seam_enforcement", 9, 16),
        ],
    );
}

#[test]
fn s1_out_of_scope_outside_policy_crates() {
    // The engine crate itself implements these entry points.
    expect(
        include_str!("fixtures/s1_seam.rs"),
        "crates/thermo-sim/src/fixture.rs",
        &[],
    );
}

#[test]
fn d4_sched_purity_in_component_impls() {
    // Linted under thermo-bench, where D2's wall-clock allowlist applies:
    // only the D4 findings inside the Component impl remain — the same
    // ambient reads outside any impl produce nothing.
    expect(
        include_str!("fixtures/d4_sched.rs"),
        "crates/thermo-bench/src/fixture.rs",
        &[
            ("sched_purity", 17, 19),
            ("sched_purity", 18, 26),
            ("sched_purity", 19, 25),
            ("sched_purity", 20, 26),
        ],
    );
}

#[test]
fn d4_stacks_with_d2_outside_the_allowlist() {
    // In the simulation crate the same fixture is double-flagged: D2 for
    // every ambient read in the file, D4 for the ones inside the impl.
    expect(
        include_str!("fixtures/d4_sched.rs"),
        "crates/thermo-sim/src/fixture.rs",
        &[
            ("ambient_nondeterminism", 5, 16),
            ("ambient_nondeterminism", 17, 19),
            // line 18 (`std::env::var`) is exactly what D2 does NOT
            // catch — the env read is D4's own contribution.
            ("ambient_nondeterminism", 19, 25),
            ("ambient_nondeterminism", 20, 26),
            ("ambient_nondeterminism", 49, 13),
            ("sched_purity", 17, 19),
            ("sched_purity", 18, 26),
            ("sched_purity", 19, 25),
            ("sched_purity", 20, 26),
        ],
    );
}

#[test]
fn e1_panic_in_worker() {
    expect(
        include_str!("fixtures/e1_panic.rs"),
        "crates/thermo-bench/src/fixture.rs",
        &[
            ("panic_in_worker", 7, 36),
            ("panic_in_worker", 9, 21),
            ("panic_in_worker", 20, 48),
        ],
    );
}

#[test]
fn e1_steal_path_pass_in_executor_crate() {
    expect(
        include_str!("fixtures/e1_steal.rs"),
        "crates/thermo-exec/src/fixture.rs",
        &[
            ("panic_in_worker", 5, 40),
            ("panic_in_worker", 10, 33),
            ("panic_in_worker", 12, 9),
        ],
    );
}

#[test]
fn e1_steal_pass_is_executor_scoped() {
    // The same file outside thermo-exec: `steal` fn names elsewhere are
    // not the Chase-Lev thief path, so only the closure pass applies
    // (and this fixture has no JobCtx closures).
    expect(
        include_str!("fixtures/e1_steal.rs"),
        "crates/thermo-sim/src/fixture.rs",
        &[],
    );
}

#[test]
fn e2_completion_order_merge_in_executor_crate() {
    expect(
        include_str!("fixtures/e2_exec_order.rs"),
        "crates/thermo-exec/src/fixture.rs",
        &[
            ("completion_order_merge", 4, 31),
            ("completion_order_merge", 12, 8),
            ("completion_order_merge", 16, 8),
            ("completion_order_merge", 20, 22),
        ],
    );
}

#[test]
fn e2_out_of_scope_outside_executor() {
    // Channels elsewhere are governed by the crates' own seams; E2 is
    // specifically the executor merge-discipline lint.
    expect(
        include_str!("fixtures/e2_exec_order.rs"),
        "crates/thermo-sim/src/fixture.rs",
        &[],
    );
}

#[test]
fn pragma_suppression_and_validation() {
    expect(
        include_str!("fixtures/pragma.rs"),
        "crates/thermo-sim/src/fixture.rs",
        &[
            // line 7: the trailing pragma on line 5 reaches lines 5-6 only.
            ("unordered_iteration", 7, 5),
            // line 10's pragma lacks a reason → rejected, and line 11 stays.
            ("bad_pragma", 10, 1),
            ("unordered_iteration", 11, 23),
            // line 13 names an unknown lint → rejected twice (unknown name,
            // then no known lint left), and line 14 stays.
            ("bad_pragma", 13, 1),
            ("bad_pragma", 13, 1),
            ("unordered_iteration", 14, 13),
        ],
    );
}

#[test]
fn stale_pragma_is_a_finding() {
    // A syntactically valid pragma that suppresses nothing has outlived
    // the code it excused — it is itself flagged, at the pragma.
    expect(
        include_str!("fixtures/pragma_stale.rs"),
        "crates/thermo-sim/src/fixture.rs",
        &[("bad_pragma", 2, 1)],
    );
}

#[test]
fn r1_dropped_receipt() {
    // Lines 3 (statement-dropped) and 4 (`let _ =`) are findings; the
    // line-6 drop is excused by the pragma on line 5 (which is therefore
    // used, not stale); bound/inspected/tail receipts are clean.
    expect(
        include_str!("fixtures/r1_receipt.rs"),
        "crates/thermo-sim/src/fixture.rs",
        &[("dropped_receipt", 3, 12), ("dropped_receipt", 4, 20)],
    );
}

#[test]
fn r1_out_of_scope_in_infra_crate() {
    // Under thermo-util R1 is off — which strands the line-5 pragma with
    // nothing to suppress, so the stale-pragma pass flags it.
    expect(
        include_str!("fixtures/r1_receipt.rs"),
        "crates/thermo-util/src/fixture.rs",
        &[("bad_pragma", 5, 5)],
    );
}

#[test]
fn a1_relaxed_on_deque_fields() {
    // Line 3 (Relaxed tail load) is a finding; line 6 is pragma-excused;
    // Acquire loads and non-head/tail atomics are clean.
    expect(
        include_str!("fixtures/a1_atomic.rs"),
        "crates/thermo-exec/src/fixture.rs",
        &[("atomic_ordering", 3, 35)],
    );
}

#[test]
fn a1_is_executor_scoped() {
    // Outside thermo-exec the deque fields mean nothing; the stranded
    // pragma on line 5 becomes the only finding.
    expect(
        include_str!("fixtures/a1_atomic.rs"),
        "crates/thermo-sim/src/fixture.rs",
        &[("bad_pragma", 5, 5)],
    );
}

#[test]
fn t1_rng_taint_in_decide() {
    // Tainted tail (line 5) and tainted return (line 10) leak; the inline
    // pragma on line 14 excuses `legacy_probe`; `draw_*`/`*_seed` egress
    // names, call-argument consumption, and pub(crate) fns are clean.
    expect(
        include_str!("fixtures/t1_taint.rs"),
        "crates/thermo-kstaled/src/decide.rs",
        &[("rng_taint", 5, 5), ("rng_taint", 10, 5)],
    );
}

#[test]
fn t1_is_off_in_infra_crates() {
    // thermo-util is the RNG's own home; the taint pass is off there and
    // the inline pragma on line 14 is reported stale.
    expect(
        include_str!("fixtures/t1_taint.rs"),
        "crates/thermo-util/src/decide.rs",
        &[("bad_pragma", 14, 22)],
    );
}

#[test]
fn x1_cross_file_exhaustiveness() {
    // The enum and its window/dispatch fns live in different files; the
    // symbol index joins them. `WindowOnly` lacks a dispatch arm (one
    // finding), `Orphan` lacks both (two findings) — all anchored at the
    // variant definitions in the enum's file.
    let files = vec![
        (
            "crates/thermo-sim/src/engine/plan.rs".to_string(),
            include_str!("fixtures/x1_plan.rs").to_string(),
        ),
        (
            "crates/thermo-sim/src/engine/mod.rs".to_string(),
            include_str!("fixtures/x1_engine.rs").to_string(),
        ),
    ];
    let findings = lint_files(&files);
    assert_eq!(
        keys(&findings),
        vec![
            ("plan_op_exhaustiveness".to_string(), 5, 5),
            ("plan_op_exhaustiveness".to_string(), 6, 5),
            ("plan_op_exhaustiveness".to_string(), 6, 5),
        ],
        "{findings:#?}"
    );
    for f in &findings {
        assert_eq!(f.file, "crates/thermo-sim/src/engine/plan.rs");
        assert_eq!(f.family, "X1");
    }
}

#[test]
fn x1_single_file_defining_the_enum_alone_fires() {
    // Linting only the defining file: no arm is visible, so every
    // variant is doubly flagged — deleting an arm can never pass by
    // linting a subset of the workspace.
    expect(
        include_str!("fixtures/x1_plan.rs"),
        "crates/thermo-sim/src/engine/plan.rs",
        &[
            ("plan_op_exhaustiveness", 4, 5),
            ("plan_op_exhaustiveness", 4, 5),
            ("plan_op_exhaustiveness", 5, 5),
            ("plan_op_exhaustiveness", 5, 5),
            ("plan_op_exhaustiveness", 6, 5),
            ("plan_op_exhaustiveness", 6, 5),
        ],
    );
}

#[test]
fn good_file_is_clean_under_strictest_scope() {
    // A policy-crate path enables D1+D2+D3+S1+E1+R1+T1 simultaneously.
    expect(
        include_str!("fixtures/good.rs"),
        "crates/thermostat/src/fixture.rs",
        &[],
    );
}

#[test]
fn messages_carry_hints_files_and_families() {
    let findings = lint_source(
        "crates/thermo-sim/src/fixture.rs",
        include_str!("fixtures/d1_unordered.rs"),
    );
    for f in &findings {
        assert_eq!(f.file, "crates/thermo-sim/src/fixture.rs");
        assert_eq!(f.family, "D1");
        assert!(!f.message.is_empty() && !f.hint.is_empty());
    }
}

//! Fixture tests: each known-bad snippet in `tests/fixtures/` must produce
//! exactly the expected `(lint, line)` findings when linted under a
//! synthetic workspace path that puts it in the relevant scope. The files
//! live in a subdirectory so cargo never compiles them — they are data.

use thermo_lint::{lint_source, Finding};

/// The `(lint, line)` identity of every finding, sorted.
fn keys(findings: &[Finding]) -> Vec<(String, u32)> {
    let mut keys: Vec<_> = findings.iter().map(|f| (f.lint.clone(), f.line)).collect();
    keys.sort();
    keys
}

fn expect(fixture: &str, rel_path: &str, want: &[(&str, u32)]) {
    let findings = lint_source(rel_path, fixture);
    let mut want: Vec<(String, u32)> = want.iter().map(|(l, n)| (l.to_string(), *n)).collect();
    want.sort();
    assert_eq!(
        keys(&findings),
        want,
        "unexpected findings for {rel_path}: {findings:#?}"
    );
}

#[test]
fn d1_unordered_iteration() {
    expect(
        include_str!("fixtures/d1_unordered.rs"),
        "crates/thermo-sim/src/fixture.rs",
        &[
            ("unordered_iteration", 2),
            ("unordered_iteration", 6),
            ("unordered_iteration", 10),
            ("unordered_iteration", 12),
        ],
    );
}

#[test]
fn d1_out_of_scope_in_infra_crate() {
    // The same file under thermo-util (infrastructure) is out of D1 scope.
    expect(
        include_str!("fixtures/d1_unordered.rs"),
        "crates/thermo-util/src/fixture.rs",
        &[],
    );
}

#[test]
fn d2_ambient_nondeterminism() {
    expect(
        include_str!("fixtures/d2_ambient.rs"),
        "crates/thermo-sim/src/fixture.rs",
        &[
            ("ambient_nondeterminism", 2),
            ("ambient_nondeterminism", 4),
            ("ambient_nondeterminism", 6),
            ("ambient_nondeterminism", 7),
            ("ambient_nondeterminism", 8),
        ],
    );
}

#[test]
fn d2_allowlisted_in_bench() {
    expect(
        include_str!("fixtures/d2_ambient.rs"),
        "crates/thermo-bench/src/fixture.rs",
        &[],
    );
}

#[test]
fn d3_rng_containment() {
    expect(
        include_str!("fixtures/d3_rng.rs"),
        "crates/thermostat/src/fixture.rs",
        &[("rng_containment", 6), ("rng_containment", 10)],
    );
}

#[test]
fn d3_decide_rs_is_the_legal_draw_site() {
    // Draw methods are legal in decide.rs; so is seed derivation.
    expect(
        include_str!("fixtures/d3_rng.rs"),
        "crates/thermostat/src/daemon/decide.rs",
        &[],
    );
}

#[test]
fn fabric_retry_loops_stay_deterministic() {
    // Linted under the real fabric module path: the fabric's abort/retry
    // backoff must stay inside D2 (no ambient clocks) and D3 (no ad-hoc
    // RNG draws) scope — a jittered retry loop is flagged on both counts.
    expect(
        include_str!("fixtures/fab_retry.rs"),
        "crates/thermo-sim/src/fabric.rs",
        &[("ambient_nondeterminism", 8), ("rng_containment", 9)],
    );
}

#[test]
fn s1_seam_enforcement() {
    expect(
        include_str!("fixtures/s1_seam.rs"),
        "crates/thermo-kstaled/src/fixture.rs",
        &[
            ("seam_enforcement", 6),
            ("seam_enforcement", 7),
            ("seam_enforcement", 9),
        ],
    );
}

#[test]
fn s1_out_of_scope_outside_policy_crates() {
    // The engine crate itself implements these entry points.
    expect(
        include_str!("fixtures/s1_seam.rs"),
        "crates/thermo-sim/src/fixture.rs",
        &[],
    );
}

#[test]
fn d4_sched_purity_in_component_impls() {
    // Linted under thermo-bench, where D2's wall-clock allowlist applies:
    // only the D4 findings inside the Component impl remain — the same
    // ambient reads outside any impl produce nothing.
    expect(
        include_str!("fixtures/d4_sched.rs"),
        "crates/thermo-bench/src/fixture.rs",
        &[
            ("sched_purity", 17),
            ("sched_purity", 18),
            ("sched_purity", 19),
            ("sched_purity", 20),
        ],
    );
}

#[test]
fn d4_stacks_with_d2_outside_the_allowlist() {
    // In the simulation crate the same fixture is double-flagged: D2 for
    // every ambient read in the file, D4 for the ones inside the impl.
    expect(
        include_str!("fixtures/d4_sched.rs"),
        "crates/thermo-sim/src/fixture.rs",
        &[
            ("ambient_nondeterminism", 5),
            ("ambient_nondeterminism", 17),
            // line 18 (`std::env::var`) is exactly what D2 does NOT
            // catch — the env read is D4's own contribution.
            ("ambient_nondeterminism", 19),
            ("ambient_nondeterminism", 20),
            ("ambient_nondeterminism", 49),
            ("sched_purity", 17),
            ("sched_purity", 18),
            ("sched_purity", 19),
            ("sched_purity", 20),
        ],
    );
}

#[test]
fn e1_panic_in_worker() {
    expect(
        include_str!("fixtures/e1_panic.rs"),
        "crates/thermo-bench/src/fixture.rs",
        &[
            ("panic_in_worker", 7),
            ("panic_in_worker", 9),
            ("panic_in_worker", 20),
        ],
    );
}

#[test]
fn e1_steal_path_pass_in_executor_crate() {
    expect(
        include_str!("fixtures/e1_steal.rs"),
        "crates/thermo-exec/src/fixture.rs",
        &[
            ("panic_in_worker", 5),
            ("panic_in_worker", 10),
            ("panic_in_worker", 12),
        ],
    );
}

#[test]
fn e1_steal_pass_is_executor_scoped() {
    // The same file outside thermo-exec: `steal` fn names elsewhere are
    // not the Chase-Lev thief path, so only the closure pass applies
    // (and this fixture has no JobCtx closures).
    expect(
        include_str!("fixtures/e1_steal.rs"),
        "crates/thermo-sim/src/fixture.rs",
        &[],
    );
}

#[test]
fn e2_completion_order_merge_in_executor_crate() {
    expect(
        include_str!("fixtures/e2_exec_order.rs"),
        "crates/thermo-exec/src/fixture.rs",
        &[
            ("completion_order_merge", 4),
            ("completion_order_merge", 12),
            ("completion_order_merge", 16),
            ("completion_order_merge", 20),
        ],
    );
}

#[test]
fn e2_out_of_scope_outside_executor() {
    // Channels elsewhere are governed by the crates' own seams; E2 is
    // specifically the executor merge-discipline lint.
    expect(
        include_str!("fixtures/e2_exec_order.rs"),
        "crates/thermo-sim/src/fixture.rs",
        &[],
    );
}

#[test]
fn pragma_suppression_and_validation() {
    expect(
        include_str!("fixtures/pragma.rs"),
        "crates/thermo-sim/src/fixture.rs",
        &[
            // line 7: the trailing pragma on line 5 reaches lines 5-6 only.
            ("unordered_iteration", 7),
            // line 10's pragma lacks a reason → rejected, and line 11 stays.
            ("bad_pragma", 10),
            ("unordered_iteration", 11),
            // line 13 names an unknown lint → rejected twice (unknown name,
            // then no known lint left), and line 14 stays.
            ("bad_pragma", 13),
            ("bad_pragma", 13),
            ("unordered_iteration", 14),
        ],
    );
}

#[test]
fn good_file_is_clean_under_strictest_scope() {
    // A policy-crate path enables D1+D2+D3+S1+E1 simultaneously.
    expect(
        include_str!("fixtures/good.rs"),
        "crates/thermostat/src/fixture.rs",
        &[],
    );
}

#[test]
fn messages_carry_hints_and_files() {
    let findings = lint_source(
        "crates/thermo-sim/src/fixture.rs",
        include_str!("fixtures/d1_unordered.rs"),
    );
    for f in &findings {
        assert_eq!(f.file, "crates/thermo-sim/src/fixture.rs");
        assert!(!f.message.is_empty() && !f.hint.is_empty());
    }
}

// Fixture: D1 unordered-iteration. Linted under an artifact-crate path.
use std::collections::HashMap; // line 2: finding
use std::collections::BTreeMap; // ordered: no finding

struct State {
    counts: HashMap<u64, u64>, // line 6: finding
    ordered: BTreeMap<u64, u64>,
}

fn build() -> std::collections::HashSet<u64> {
    // line 10: finding (HashSet)
    std::collections::HashSet::new() // line 12: finding
}

// Fixture: a migration-fabric retry loop must not pace its backoff from
// ambient wall-clock time or an ad-hoc RNG draw — retry schedules have
// to be a pure function of the virtual clock and the retry count (D2/D3),
// or fabric experiments stop being byte-reproducible.
use thermo_util::rng::{Rng, SmallRng};

fn jittered_backoff_ns(rng: &mut SmallRng, attempt: u32) -> u64 {
    let started = std::time::Instant::now(); // line 8: ambient_nondeterminism
    let jitter = rng.gen_range(0..1_000); // line 9: rng_containment
    let _ = started;
    (200_000u64 << attempt) + jitter
}

fn deterministic_backoff_ns(attempt: u32) -> u64 {
    // The shipped fabric derives backoff purely from the retry count and
    // the configured base: no finding.
    200_000u64 << attempt.min(20)
}

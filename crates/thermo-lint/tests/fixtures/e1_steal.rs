// Fixture: E1 steal-path pass — panicky calls inside `fn …steal…`.
impl StealDeque {
    fn steal_back(&self) -> usize {
        let t = self.tail.load(Acquire);
        self.items.get(t - 1).copied().unwrap() // line 5: finding (unwrap)
    }
}

fn steal_loop(deques: &[StealDeque]) {
    let victim = deques.first().expect("at least one worker"); // line 10: finding (expect)
    if victim.is_poisoned() {
        panic!("poisoned deque"); // line 12: finding (panic)
    }
}

fn drain_local(deque: &StealDeque) -> usize {
    // Panicky call outside any steal fn: the closure pass still governs
    // JobCtx closures, but this plain helper produces no finding.
    deque.front().unwrap()
}

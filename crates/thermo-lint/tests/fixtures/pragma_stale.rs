// Fixture: a valid pragma whose findings are gone is itself a finding.
// thermo-lint: allow(unordered_iteration, reason = "migrated to BTreeMap")
fn tidy() -> u64 {
    7
}

// Fixture: D2 ambient nondeterminism, outside the bench allowlist.
use std::time::Instant; // line 2: finding

fn now() -> std::time::SystemTime {
    // line 4: finding (SystemTime)
    let _who = std::thread::current().id(); // line 6: finding
    let _entropy = rand::random::<u64>(); // line 7: finding
    std::time::SystemTime::now() // line 8: finding
}

fn fine(duration: std::time::Duration) -> u64 {
    // Duration is a value type, not a clock read: no finding.
    duration.as_nanos() as u64
}

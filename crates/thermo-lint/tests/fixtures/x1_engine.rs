// Fixture: the window/dispatch fns covering part of the X1 enum.
impl Engine {
    fn local_window(op: &PlanOp) -> Option<u64> {
        match op {
            PlanOp::Covered { page } => Some(*page),
            PlanOp::WindowOnly { page } => Some(*page),
            _ => None,
        }
    }

    fn apply_op(&mut self, op: &PlanOp) {
        if let PlanOp::Covered { page } = op {
            self.touch(*page);
        }
    }
}

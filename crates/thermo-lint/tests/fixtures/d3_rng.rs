// Fixture: D3 rng-containment, linted under a policy-crate path that is
// not a decide.rs module.
use thermo_util::rng::{Rng, SmallRng};

fn pick(rng: &mut SmallRng, n: u64) -> u64 {
    rng.gen_range(0..n) // line 6: finding (draw outside decide.rs)
}

fn reseed(base: u64, lane: u64) -> u64 {
    thermo_util::rng::derive_stream_seed(base, lane) // line 10: finding
}

fn seed_only(seed: u64) -> SmallRng {
    // Seeding a generator is not a draw: no finding.
    use thermo_util::rng::SeedableRng;
    SmallRng::seed_from_u64(seed)
}

// Fixture: E1 panic-in-worker — panicking calls inside JobCtx closures.
fn fan_out(inputs: Vec<u64>) {
    let jobs: Vec<_> = inputs
        .iter()
        .map(|x| {
            move |ctx: &thermo_exec::JobCtx| {
                let v = lookup(*x).unwrap(); // line 7: finding (unwrap)
                if v == 0 {
                    panic!("zero"); // line 9: finding (panic)
                }
                v + ctx.seed
            }
        })
        .collect();
    run(jobs);
}

fn single(x: u64) -> impl FnOnce(&thermo_exec::JobCtx) -> u64 {
    // Expression-bodied closure: the expect is still inside the body.
    move |ctx: &thermo_exec::JobCtx| lookup(x).expect("present") + ctx.seed // line 20: finding
}

fn not_a_job(x: u64) -> u64 {
    // unwrap outside any JobCtx closure: no finding.
    let f = |y: u64| lookup(y).unwrap();
    f(x)
}

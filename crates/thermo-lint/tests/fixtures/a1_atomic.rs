// Fixture: A1 Relaxed orderings on the deque's head/tail claim path.
fn steal_claim(d: &Deque, stats: &Counter) -> Option<u64> {
    let t = d.tail.load(Ordering::Relaxed); // line 3: finding
    let h = d.head.load(Ordering::Acquire); // Acquire: ok
    // thermo-lint: allow(atomic_ordering, reason = "fixture: advisory counter")
    d.head.store(h + 1, Ordering::Relaxed); // line 6: suppressed
    stats.calls.fetch_add(1, Ordering::Relaxed); // not head/tail: ok
    Some(t + h)
}

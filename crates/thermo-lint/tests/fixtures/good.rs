// Fixture: a clean file full of near-misses — must produce zero findings
// even under the strictest (artifact + policy) path scoping.
use std::collections::{BTreeMap, BTreeSet};

/// Mentions HashMap, Instant, migrate_page and gen_range in a doc comment.
struct Clean<'a> {
    ordered: BTreeMap<u64, &'a str>,
    set: BTreeSet<u64>,
}

fn strings_are_not_code() -> &'static str {
    let _raw = r#"HashMap::new() and engine.migrate_page(x) and rng.gen_range(0..9)"#;
    let _c = 'H';
    "use std::time::Instant"
}

fn plan_speak(view_len: usize) -> usize {
    // memory_view / apply_plan / PolicyPlan are the legal vocabulary.
    view_len
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn test_code_is_out_of_scope() {
        let mut m: HashMap<u64, u64> = HashMap::new();
        m.insert(1, 2);
        let _t = Instant::now();
    }
}

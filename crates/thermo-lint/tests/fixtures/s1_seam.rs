// Fixture: S1 seam enforcement, linted under a policy-crate path.
use thermo_sim::Engine;

fn tick(engine: &mut Engine) {
    let mut hits = Vec::new();
    engine.scan_and_clear_accessed(start(), 512, &mut hits); // line 6: finding
    if engine.migrate_page(start(), target()).is_ok() {
        // line 7: finding (migrate_page)
        engine.poison_page(start(), size()); // line 9: finding
    }
    // The seam itself is always legal (receipts bound and used, per R1):
    let view = engine.memory_view(&[], 1);
    let plan = thermo_sim::PolicyPlan::new();
    let receipt = engine.apply_plan(&plan);
    consume(view, receipt);
}

// Fixture: pragma handling.
// thermo-lint: allow(unordered_iteration, reason = "scratch cache keyed by opaque ids; never iterated")
use std::collections::HashMap; // suppressed by the pragma above

fn scratch() -> HashMap<u64, u64> // thermo-lint: allow(unordered_iteration, reason = "same scratch cache")
{
    HashMap::new() // line 7: finding — the pragma two lines up does not reach here
}

// thermo-lint: allow(unordered_iteration)
use std::collections::HashSet; // line 11: NOT suppressed (pragma above lacks a reason)

// thermo-lint: allow(made_up_lint, reason = "x")
fn noop(_s: HashSet<u64>) {}

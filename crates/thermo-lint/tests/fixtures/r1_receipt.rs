// Fixture: R1 dropped receipts, linted under an artifact-crate path.
fn tick(engine: &mut Engine, plan: &PolicyPlan) {
    engine.apply_plan(plan); // line 3: finding (statement-dropped)
    let _ = engine.memory_view(&[], 1); // line 4: finding (wildcard bind)
    // thermo-lint: allow(dropped_receipt, reason = "fixture: deliberate drop")
    engine.apply_plan(plan); // line 6: suppressed by the pragma above
    let receipt = engine.apply_plan(plan); // bound to a name: ok
    if engine.apply_plan(plan).all_done() {
        consume(receipt); // inspected in an `if` head: ok
    }
}

fn tail_value(engine: &mut Engine, plan: &PolicyPlan) -> PlanReceipt {
    engine.apply_plan(plan) // tail expression is the fn's value: ok
}

// Fixture: E2 completion-order merge — channel receives in executor code.
fn merge_by_arrival(rx: Receiver<(usize, u64)>) -> Vec<u64> {
    let mut out = Vec::new();
    while let Ok((_, v)) = rx.recv() {
        // the recv on line 4 is a finding: arrival order varies with steals
        out.push(v);
    }
    out
}

fn poll_workers(rx: &Receiver<u64>) -> Option<u64> {
    rx.try_recv().ok() // line 12: finding (try_recv)
}

fn wait_with_deadline(rx: &Receiver<u64>) -> Option<u64> {
    rx.recv_timeout(timeout()).ok() // line 16: finding (recv_timeout)
}

fn build_channel() -> bool {
    let (_tx, _rx) = mpsc::channel::<u64>(); // line 20: finding (mpsc::)
    true
}

fn not_a_receive(results: &mut Vec<Option<u64>>, id: usize, v: u64) {
    // Slot-indexed merge keyed by job id: the blessed pattern, no finding.
    results[id] = Some(v);
}

// Known-bad fixture for D4 (sched_purity): a Component impl that leaks
// every ambient-ordering source the event loop bans. Linted under a
// thermo-bench path, where D2's wall-clock allowlist would otherwise
// let all of this through.
use std::time::Instant;

struct Jittery {
    next_ns: u64,
}

impl Component for Jittery {
    fn next_tick_ns(&self) -> u64 {
        self.next_ns
    }

    fn tick(&mut self) -> Control {
        let _t0 = Instant::now();
        let _hint = std::env::var("ORDER_HINT");
        let _who = std::thread::current();
        let _coin: u64 = rand::random();
        self.next_ns += 1;
        Control::Continue
    }
}

struct Pure {
    next_ns: u64,
}

impl sched::Component for Pure {
    fn next_tick_ns(&self) -> u64 {
        self.next_ns
    }

    fn tick(&mut self) -> Control {
        self.next_ns += 1_000_000;
        Control::Continue
    }
}

/// A generic bound is not an implementation: nothing here is in D4 scope.
struct Pool<C: Component> {
    inner: Vec<C>,
}

fn outside_any_component_impl() {
    // Ambient reads outside a Component impl are D2's business (and this
    // fixture's synthetic path is on D2's allowlist, so: no finding).
    let _ = Instant::now();
}

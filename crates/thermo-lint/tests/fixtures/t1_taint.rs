// Fixture: T1 rng taint, linted as a decide.rs module (draw methods are
// sources there; D3 is off by design — decide.rs is the legal draw site).
pub fn leak_tail(base: u64, t: u64) -> u64 {
    let seed = derive_stream_seed(base, t);
    seed // line 5: finding (tainted tail expression)
}

pub fn leak_return(rng: &mut Pcg) -> u64 {
    let v = rng.gen_range(0..8);
    return v; // line 10: finding (tainted return)
}

pub fn legacy_probe(base: u64) -> u64 {
    splitmix64(base) // thermo-lint: allow(rng_taint, reason = "fixture: legacy probe API")
}

pub fn draw_probe(rng: &mut Pcg, n: u64) -> u64 {
    rng.gen_range(0..n) // sanctioned `draw_*` egress: ok
}

pub fn tenant_seed(base: u64, t: u64) -> u64 {
    derive_stream_seed(base, t) // sanctioned `*_seed` egress: ok
}

pub fn quota(rng: &mut Pcg, limit: u64) -> u64 {
    let v = rng.gen_range(0..limit);
    clamp(v, limit) // consumed as a call argument: ok
}

pub(crate) fn internal(base: u64) -> u64 {
    splitmix64(base) // not part of the public surface: ok
}

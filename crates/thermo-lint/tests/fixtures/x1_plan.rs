// Fixture: the audited enum. `WindowOnly` lacks a dispatch arm and
// `Orphan` lacks both arms; `Covered` is fully wired in x1_engine.rs.
pub enum PlanOp {
    Covered { page: u64 },
    WindowOnly { page: u64 },
    Orphan { page: u64 },
}

//! A hand-rolled Rust lexer, just deep enough for invariant linting.
//!
//! The lints in this crate are token-level pattern matches (forbidden
//! identifiers, method-call shapes, closure parameter lists), so the lexer
//! only needs to get three things exactly right:
//!
//! 1. **String/char/comment stripping.** A lint must never fire on the word
//!    `HashMap` inside a doc comment or an error-message string — including
//!    raw strings (`r#"…"#`), byte strings, and nested block comments.
//! 2. **Line numbers.** Findings are reported as `file:line` and suppressed
//!    by line-anchored pragmas, so every token carries its 1-based line.
//! 3. **Pragma capture.** `// thermo-lint: …` comments are collected with
//!    their line numbers for the suppression pass.
//!
//! Everything else (numbers, lifetimes, punctuation) is tokenized only far
//! enough not to confuse those three.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based source line the token starts on.
    pub line: u32,
    /// 1-based byte column the token starts on (tabs count as one byte).
    pub col: u32,
    /// The token's kind (and text, for identifiers).
    pub kind: TokenKind,
}

/// Token payload. Literals carry no text: no lint inspects their contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (including raw identifiers, `r#type`).
    Ident(String),
    /// A single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
    /// A string, char, or numeric literal (contents intentionally dropped).
    Literal,
    /// A lifetime such as `'a` (kept distinct so `'a` is never a char).
    Lifetime,
}

impl TokenKind {
    /// The identifier text, if this is an identifier token.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

/// A `// thermo-lint: …` comment, captured verbatim for the pragma parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PragmaComment {
    /// 1-based line the comment appears on.
    pub line: u32,
    /// 1-based byte column of the comment's opening `//`.
    pub col: u32,
    /// Comment text after the `// thermo-lint:` marker, trimmed.
    pub text: String,
}

/// Comment marker that introduces a suppression pragma.
pub const PRAGMA_MARKER: &str = "thermo-lint:";

/// Lexer output: the token stream plus every pragma comment.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All tokens, in source order.
    pub tokens: Vec<Token>,
    /// All `// thermo-lint:` comments, in source order.
    pub pragmas: Vec<PragmaComment>,
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    line_start: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.line_start = self.pos;
        }
        Some(b)
    }

    /// 1-based byte column of the cursor's current position.
    fn col(&self) -> u32 {
        (self.pos - self.line_start + 1) as u32
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `source` into tokens and pragma comments.
///
/// The lexer never fails: bytes it does not understand become punctuation
/// tokens, which no lint matches. That is the right failure mode for a
/// linter — a file that confuses the lexer produces no *false* findings.
pub fn lex(source: &str) -> Lexed {
    let mut c = Cursor {
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
        line_start: 0,
    };
    let mut out = Lexed::default();

    while let Some(b) = c.peek() {
        let line = c.line;
        let col = c.col();
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek_at(1) == Some(b'/') => lex_line_comment(&mut c, &mut out),
            b'/' if c.peek_at(1) == Some(b'*') => lex_block_comment(&mut c),
            b'"' => {
                lex_string(&mut c);
                out.tokens.push(Token {
                    line,
                    col,
                    kind: TokenKind::Literal,
                });
            }
            b'\'' => {
                let kind = lex_quote(&mut c);
                out.tokens.push(Token { line, col, kind });
            }
            b'r' | b'b' if starts_raw_or_byte_string(&c) => {
                lex_raw_or_byte_string(&mut c);
                out.tokens.push(Token {
                    line,
                    col,
                    kind: TokenKind::Literal,
                });
            }
            b'r' if c.peek_at(1) == Some(b'#') && c.peek_at(2).is_some_and(is_ident_start) => {
                // Raw identifier r#type: skip the r# and lex the ident.
                c.bump();
                c.bump();
                let ident = lex_ident_text(&mut c);
                out.tokens.push(Token {
                    line,
                    col,
                    kind: TokenKind::Ident(ident),
                });
            }
            _ if is_ident_start(b) => {
                let ident = lex_ident_text(&mut c);
                out.tokens.push(Token {
                    line,
                    col,
                    kind: TokenKind::Ident(ident),
                });
            }
            _ if b.is_ascii_digit() => {
                lex_number(&mut c);
                out.tokens.push(Token {
                    line,
                    col,
                    kind: TokenKind::Literal,
                });
            }
            _ => {
                c.bump();
                out.tokens.push(Token {
                    line,
                    col,
                    kind: TokenKind::Punct(b as char),
                });
            }
        }
    }
    out
}

fn lex_line_comment(c: &mut Cursor<'_>, out: &mut Lexed) {
    let line = c.line;
    let col = c.col();
    let start = c.pos;
    while let Some(b) = c.peek() {
        if b == b'\n' {
            break;
        }
        c.bump();
    }
    let text = std::str::from_utf8(&c.bytes[start..c.pos]).unwrap_or("");
    // `// thermo-lint: …` (also tolerated after `///`): capture for pragmas.
    let body = text.trim_start_matches('/').trim_start();
    if let Some(rest) = body.strip_prefix(PRAGMA_MARKER) {
        out.pragmas.push(PragmaComment {
            line,
            col,
            text: rest.trim().to_string(),
        });
    }
}

fn lex_block_comment(c: &mut Cursor<'_>) {
    // Rust block comments nest.
    c.bump();
    c.bump();
    let mut depth = 1u32;
    while depth > 0 {
        match (c.peek(), c.peek_at(1)) {
            (Some(b'/'), Some(b'*')) => {
                c.bump();
                c.bump();
                depth += 1;
            }
            (Some(b'*'), Some(b'/')) => {
                c.bump();
                c.bump();
                depth -= 1;
            }
            (Some(_), _) => {
                c.bump();
            }
            (None, _) => break,
        }
    }
}

fn lex_string(c: &mut Cursor<'_>) {
    c.bump(); // opening quote
    while let Some(b) = c.bump() {
        match b {
            b'\\' => {
                c.bump();
            }
            b'"' => break,
            _ => {}
        }
    }
}

/// After a `'`: a lifetime (`'a`, `'static`) or a char literal (`'x'`,
/// `'\n'`). A lifetime is an identifier not followed by a closing quote.
fn lex_quote(c: &mut Cursor<'_>) -> TokenKind {
    c.bump(); // the quote
    if c.peek().is_some_and(is_ident_start) && c.peek() != Some(b'\\') {
        // Look ahead over the identifier; if it ends with `'` it was a char
        // like 'a', otherwise a lifetime.
        let mut off = 0;
        while c.peek_at(off).is_some_and(is_ident_continue) {
            off += 1;
        }
        if c.peek_at(off) == Some(b'\'') && off == 1 {
            c.bump(); // the char
            c.bump(); // closing quote
            return TokenKind::Literal;
        }
        for _ in 0..off {
            c.bump();
        }
        return TokenKind::Lifetime;
    }
    // Escaped or non-identifier char literal.
    while let Some(b) = c.bump() {
        match b {
            b'\\' => {
                c.bump();
            }
            b'\'' => break,
            _ => {}
        }
    }
    TokenKind::Literal
}

fn starts_raw_or_byte_string(c: &Cursor<'_>) -> bool {
    match c.peek() {
        Some(b'r') => {
            // r"…", r#"…"#, r##"…"## …
            let mut off = 1;
            while c.peek_at(off) == Some(b'#') {
                off += 1;
            }
            off > 1 && c.peek_at(off) == Some(b'"') || c.peek_at(1) == Some(b'"')
        }
        Some(b'b') => match c.peek_at(1) {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => {
                let mut off = 2;
                while c.peek_at(off) == Some(b'#') {
                    off += 1;
                }
                c.peek_at(off) == Some(b'"')
            }
            _ => false,
        },
        _ => false,
    }
}

fn lex_raw_or_byte_string(c: &mut Cursor<'_>) {
    if c.peek() == Some(b'b') {
        c.bump();
        if c.peek() == Some(b'\'') {
            lex_quote(c);
            return;
        }
    }
    if c.peek() == Some(b'r') {
        c.bump();
        let mut hashes = 0usize;
        while c.peek() == Some(b'#') {
            c.bump();
            hashes += 1;
        }
        c.bump(); // opening quote
        loop {
            match c.bump() {
                None => return,
                Some(b'"') => {
                    let mut seen = 0usize;
                    while seen < hashes && c.peek() == Some(b'#') {
                        c.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        return;
                    }
                }
                Some(_) => {}
            }
        }
    }
    // Plain byte string b"…".
    lex_string(c);
}

fn lex_ident_text(c: &mut Cursor<'_>) -> String {
    let start = c.pos;
    while c.peek().is_some_and(is_ident_continue) {
        c.bump();
    }
    String::from_utf8_lossy(&c.bytes[start..c.pos]).into_owned()
}

fn lex_number(c: &mut Cursor<'_>) {
    // Digits, underscores, radix/exponent letters; a `.` only when it is a
    // decimal point (digit follows) so ranges like `0..n` stay punctuation.
    while let Some(b) = c.peek() {
        if b.is_ascii_alphanumeric() || b == b'_' {
            c.bump();
        } else if b == b'.' && c.peek_at(1).is_some_and(|d| d.is_ascii_digit()) {
            c.bump();
        } else {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let src = r##"
            // HashMap in a comment
            /* HashMap /* nested */ still comment */
            let x = "HashMap in a string";
            let y = r#"HashMap raw "quoted" string"#;
            let z = b"HashMap bytes";
            let w = 'H';
            real_ident
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "HashMap"), "{ids:?}");
        assert!(ids.iter().any(|i| i == "real_ident"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } let c = 'x';";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 3);
        // The trailing 'x' is a char literal, and `str`/`x` survive.
        assert!(lexed.tokens.iter().any(|t| t.kind.ident() == Some("str")));
    }

    #[test]
    fn line_numbers_are_accurate() {
        let src = "a\nb\n\nc";
        let lexed = lex(src);
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn columns_are_accurate() {
        let src = "ab cd\n  ef(gh)";
        let lexed = lex(src);
        let pos: Vec<(u32, u32)> = lexed.tokens.iter().map(|t| (t.line, t.col)).collect();
        // ab@1:1 cd@1:4 ef@2:3 (@2:5 gh@2:6 )@2:8
        assert_eq!(pos, vec![(1, 1), (1, 4), (2, 3), (2, 5), (2, 6), (2, 8)]);
    }

    #[test]
    fn pragmas_are_captured_with_lines() {
        let src = "let a = 1;\n// thermo-lint: allow(unordered_iteration, reason = \"x\")\nlet b;";
        let lexed = lex(src);
        assert_eq!(lexed.pragmas.len(), 1);
        assert_eq!(lexed.pragmas[0].line, 2);
        assert!(lexed.pragmas[0].text.starts_with("allow("));
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        assert_eq!(
            idents("r#type r#match plain"),
            vec!["type", "match", "plain"]
        );
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let lexed = lex("for i in 0..n { 1.5; 0xff; 1e3; }");
        // `..` must survive as two dots.
        let dots = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Punct('.'))
            .count();
        assert_eq!(dots, 2);
        assert!(lexed.tokens.iter().any(|t| t.kind.ident() == Some("n")));
    }
}

//! Token trees and a lightweight item parse over the lexer's output.
//!
//! The flow-aware lint families (R1/X1/T1, DESIGN.md §16) need more
//! structure than a flat token stream: statement boundaries, function
//! bodies, enum variant lists. This module builds **brace/paren/bracket
//! matched token trees** and recognizes just enough item grammar —
//! `fn`/`enum`/`impl`/`mod`/`trait` with visibility — to walk every
//! function body with its name and visibility attached.
//!
//! Like the lexer, the parse never fails: a stray closer becomes a leaf,
//! an unclosed group swallows the rest of the file. A file that confuses
//! the parser produces no *false* findings, which is the right failure
//! mode for a linter. Input is expected to be the `strip_cfg_test`
//! output, so attribute tokens and test-gated items are already gone.

use crate::lexer::{Token, TokenKind};

/// One node of a token tree: a non-delimiter token, or a matched group.
#[derive(Debug, Clone)]
pub enum Tree {
    /// A non-delimiter token.
    Leaf(Token),
    /// A `(…)`, `[…]`, or `{…}` group.
    Group(Group),
}

/// A delimiter-matched group and its children.
#[derive(Debug, Clone)]
pub struct Group {
    /// Opening delimiter: `(`, `[`, or `{`.
    pub delim: char,
    /// 1-based line of the opening delimiter.
    pub line: u32,
    /// 1-based byte column of the opening delimiter.
    pub col: u32,
    /// The trees between the delimiters.
    pub children: Vec<Tree>,
}

impl Tree {
    /// The identifier text, if this is an identifier leaf.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tree::Leaf(t) => t.kind.ident(),
            Tree::Group(_) => None,
        }
    }

    /// True when this is a punctuation leaf for `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, Tree::Leaf(t) if t.kind == TokenKind::Punct(c))
    }

    /// The group, when this is one.
    pub fn group(&self) -> Option<&Group> {
        match self {
            Tree::Group(g) => Some(g),
            Tree::Leaf(_) => None,
        }
    }

    /// `(line, col)` of the node's first byte.
    pub fn pos(&self) -> (u32, u32) {
        match self {
            Tree::Leaf(t) => (t.line, t.col),
            Tree::Group(g) => (g.line, g.col),
        }
    }
}

fn closer(open: char) -> char {
    match open {
        '(' => ')',
        '[' => ']',
        _ => '}',
    }
}

/// Builds token trees from a (already `strip_cfg_test`-ed) token stream.
pub fn build(tokens: &[Token]) -> Vec<Tree> {
    let mut i = 0;
    build_until(tokens, &mut i, None)
}

fn build_until(tokens: &[Token], i: &mut usize, close: Option<char>) -> Vec<Tree> {
    let mut out = Vec::new();
    while *i < tokens.len() {
        let t = &tokens[*i];
        match t.kind {
            TokenKind::Punct(c @ ('(' | '[' | '{')) => {
                let (line, col) = (t.line, t.col);
                *i += 1;
                let children = build_until(tokens, i, Some(closer(c)));
                out.push(Tree::Group(Group {
                    delim: c,
                    line,
                    col,
                    children,
                }));
            }
            TokenKind::Punct(c @ (')' | ']' | '}')) => {
                if close == Some(c) {
                    *i += 1;
                    return out;
                }
                // Stray closer: keep it as a leaf so the parse never fails.
                out.push(Tree::Leaf(t.clone()));
                *i += 1;
            }
            _ => {
                out.push(Tree::Leaf(t.clone()));
                *i += 1;
            }
        }
    }
    out
}

/// One element of a flattened tree: delimiters come back as explicit
/// `Open`/`Close` markers so scanners can treat brace groups as statement
/// boundaries while looking *through* paren/bracket groups.
#[derive(Debug, Clone, Copy)]
pub enum Flat<'a> {
    /// A leaf token.
    Tok(&'a Token),
    /// A group's opening delimiter.
    Open(&'a Group),
    /// A group's closing delimiter.
    Close(&'a Group),
}

impl<'a> Flat<'a> {
    /// The identifier text, if this is an identifier leaf.
    pub fn ident(&self) -> Option<&'a str> {
        match self {
            Flat::Tok(t) => t.kind.ident(),
            _ => None,
        }
    }

    /// True when this is a punctuation leaf for `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, Flat::Tok(t) if t.kind == TokenKind::Punct(c))
    }

    /// True when this opens or closes a brace group (a statement boundary).
    pub fn is_brace_boundary(&self) -> bool {
        matches!(self, Flat::Open(g) | Flat::Close(g) if g.delim == '{')
    }

    /// True when this is the opening `(` of a call's argument group.
    pub fn opens_paren(&self) -> bool {
        matches!(self, Flat::Open(g) if g.delim == '(')
    }

    /// `(line, col)` of the element's first byte (closers report the
    /// group's opening position — close enough for finding anchors).
    pub fn pos(&self) -> (u32, u32) {
        match self {
            Flat::Tok(t) => (t.line, t.col),
            Flat::Open(g) | Flat::Close(g) => (g.line, g.col),
        }
    }
}

/// Flattens trees depth-first, materializing group delimiters.
pub fn flatten<'a>(trees: &'a [Tree], out: &mut Vec<Flat<'a>>) {
    for t in trees {
        match t {
            Tree::Leaf(tok) => out.push(Flat::Tok(tok)),
            Tree::Group(g) => {
                out.push(Flat::Open(g));
                flatten(&g.children, out);
                out.push(Flat::Close(g));
            }
        }
    }
}

/// A function item's visibility, as far as the taint lint cares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vis {
    /// No `pub` at all.
    Private,
    /// `pub(crate)`, `pub(super)`, `pub(in …)` — restricted, reviewed
    /// within the crate, not part of the public surface.
    Restricted,
    /// Bare `pub`: the crate's public surface.
    Pub,
}

/// A recognized `fn` item.
#[derive(Debug)]
pub struct FnItem<'a> {
    /// The function's name.
    pub name: &'a str,
    /// Visibility (backward scan over `pub`/`pub(…)` and fn qualifiers).
    pub vis: Vis,
    /// The body block, when the item has one (trait signatures don't).
    pub body: Option<&'a Group>,
}

/// A recognized `enum` item with its variant names and positions.
#[derive(Debug)]
pub struct EnumItem<'a> {
    /// The enum's name.
    pub name: &'a str,
    /// Variants as `(name, line, col)` of each variant's name token.
    pub variants: Vec<(&'a str, u32, u32)>,
}

/// Walks items in `trees`, calling `on_fn` for every `fn` (including fns
/// nested in `impl`/`mod`/`trait` bodies and inside other fn bodies) and
/// `on_enum` for every `enum`.
pub fn walk_items<'a>(
    trees: &'a [Tree],
    on_fn: &mut dyn FnMut(&FnItem<'a>),
    on_enum: &mut dyn FnMut(&EnumItem<'a>),
) {
    let mut i = 0;
    while i < trees.len() {
        match trees[i].ident() {
            Some("fn") => {
                let Some(name) = trees.get(i + 1).and_then(Tree::ident) else {
                    i += 1; // `fn(…)` pointer type, not an item
                    continue;
                };
                // The body is the first brace group before a `;` leaf.
                let mut j = i + 2;
                let mut body = None;
                while j < trees.len() {
                    if trees[j].is_punct(';') {
                        break;
                    }
                    if let Some(g) = trees[j].group() {
                        if g.delim == '{' {
                            body = Some(g);
                            break;
                        }
                    }
                    j += 1;
                }
                let item = FnItem {
                    name,
                    vis: vis_before(trees, i),
                    body,
                };
                on_fn(&item);
                if let Some(g) = body {
                    walk_items(&g.children, on_fn, on_enum);
                }
                i = j + 1;
            }
            Some("enum") => {
                let name = trees.get(i + 1).and_then(Tree::ident);
                // The variant list is the first brace group before a `;`.
                let mut j = i + 2;
                let mut body = None;
                while j < trees.len() {
                    if trees[j].is_punct(';') {
                        break;
                    }
                    if let Some(g) = trees[j].group() {
                        if g.delim == '{' {
                            body = Some(g);
                            break;
                        }
                    }
                    j += 1;
                }
                if let (Some(name), Some(g)) = (name, body) {
                    on_enum(&EnumItem {
                        name,
                        variants: enum_variants(g),
                    });
                }
                i = j + 1;
            }
            Some("impl" | "mod" | "trait") => {
                // Recurse into the item's body block, if any.
                let mut j = i + 1;
                while j < trees.len() {
                    if trees[j].is_punct(';') {
                        break;
                    }
                    if let Some(g) = trees[j].group() {
                        if g.delim == '{' {
                            walk_items(&g.children, on_fn, on_enum);
                            break;
                        }
                    }
                    j += 1;
                }
                i = j + 1;
            }
            _ => i += 1,
        }
    }
}

/// Visibility of the item whose keyword sits at `trees[at]`, by scanning
/// backward over fn qualifiers (`const`, `unsafe`, `async`, `extern "C"`).
fn vis_before(trees: &[Tree], at: usize) -> Vis {
    let mut j = at;
    while j > 0 {
        j -= 1;
        match &trees[j] {
            Tree::Leaf(t) => match &t.kind {
                TokenKind::Ident(s)
                    if matches!(s.as_str(), "const" | "unsafe" | "async" | "extern") =>
                {
                    continue;
                }
                TokenKind::Ident(s) if s == "pub" => return Vis::Pub,
                TokenKind::Literal => continue, // the "C" in extern "C"
                _ => return Vis::Private,
            },
            Tree::Group(g) if g.delim == '(' => {
                // `pub(crate) fn` — the paren group follows `pub`.
                if j > 0 && trees[j - 1].ident() == Some("pub") {
                    return Vis::Restricted;
                }
                return Vis::Private;
            }
            Tree::Group(_) => return Vis::Private,
        }
    }
    Vis::Private
}

/// Variant names (and their positions) of an enum body: the first
/// identifier of every top-level comma-separated chunk.
fn enum_variants(body: &Group) -> Vec<(&str, u32, u32)> {
    let mut out = Vec::new();
    for chunk in body.children.split(|t| t.is_punct(',')) {
        for t in chunk {
            if let Tree::Leaf(tok) = t {
                if let TokenKind::Ident(name) = &tok.kind {
                    out.push((name.as_str(), tok.line, tok.col));
                    break;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn trees(src: &str) -> Vec<Tree> {
        build(&lex(src).tokens)
    }

    #[test]
    fn groups_match_and_stray_closers_survive() {
        let t = trees("a { b ( c ) } d )");
        assert_eq!(t.len(), 4, "{t:?}"); // a, {…}, d, stray )
        let g = t[1].group().expect("brace group");
        assert_eq!(g.delim, '{');
        assert_eq!(g.children.len(), 2); // b, (…)
        assert!(t[3].is_punct(')'));
    }

    #[test]
    fn fn_items_carry_name_vis_and_body() {
        let src = "
            pub fn open(x: u64) -> u64 { x }
            pub(crate) fn shut() {}
            fn hidden() {}
            pub const unsafe fn qual() {}
            impl Foo { pub fn method(&self) {} }
        ";
        let mut seen = Vec::new();
        walk_items(
            &trees(src),
            &mut |f| seen.push((f.name.to_string(), f.vis, f.body.is_some())),
            &mut |_| {},
        );
        assert_eq!(
            seen,
            vec![
                ("open".to_string(), Vis::Pub, true),
                ("shut".to_string(), Vis::Restricted, true),
                ("hidden".to_string(), Vis::Private, true),
                ("qual".to_string(), Vis::Pub, true),
                ("method".to_string(), Vis::Pub, true),
            ]
        );
    }

    #[test]
    fn enum_variants_are_positioned() {
        let src = "pub enum Op {\n    First,\n    Second(u64),\n    Third { x: u64 },\n}";
        let mut enums = Vec::new();
        walk_items(&trees(src), &mut |_| {}, &mut |e| {
            enums.push((
                e.name.to_string(),
                e.variants
                    .iter()
                    .map(|(n, l, c)| (n.to_string(), *l, *c))
                    .collect::<Vec<_>>(),
            ))
        });
        assert_eq!(enums.len(), 1);
        assert_eq!(enums[0].0, "Op");
        assert_eq!(
            enums[0].1,
            vec![
                ("First".to_string(), 2, 5),
                ("Second".to_string(), 3, 5),
                ("Third".to_string(), 4, 5),
            ]
        );
    }

    #[test]
    fn flatten_marks_brace_boundaries() {
        let t = trees("a { b } ( c )");
        let mut flat = Vec::new();
        flatten(&t, &mut flat);
        let braces = flat.iter().filter(|f| f.is_brace_boundary()).count();
        assert_eq!(braces, 2, "open + close of the one brace group");
        let parens = flat.iter().filter(|f| f.opens_paren()).count();
        assert_eq!(parens, 1);
    }

    #[test]
    fn nested_fns_are_walked() {
        let src = "pub fn outer() { fn inner() {} }";
        let mut names = Vec::new();
        walk_items(
            &trees(src),
            &mut |f| names.push(f.name.to_string()),
            &mut |_| {},
        );
        assert_eq!(names, vec!["outer", "inner"]);
    }
}

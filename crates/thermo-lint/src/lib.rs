//! `thermo-lint`: in-tree static analysis enforcing the workspace's
//! determinism and seam invariants (DESIGN.md §11).
//!
//! The golden-artifact gate proves that a given tree produces byte-identical
//! experiment artifacts; this crate proves the *code shape* that makes that
//! possible hasn't rotted. It is a dependency-free, hand-rolled pass in the
//! spirit of `thermo-util`'s hermetic philosophy: a small Rust lexer
//! ([`lexer`]), a lightweight item skipper (so `#[cfg(test)]` code is out of
//! scope), a brace-matched token-tree layer with item recognition
//! (`tree`), a cross-file symbol index (`index`), and eleven lint
//! families ([`lints`]).
//!
//! Token-stream families:
//!
//! * **D1 `unordered_iteration`** — `HashMap`/`HashSet` in artifact crates.
//! * **D2 `ambient_nondeterminism`** — wall-clock/thread-identity/entropy
//!   sources outside the bench-reporting allowlist.
//! * **D3 `rng_containment`** — RNG draws outside `decide.rs`; ad-hoc seed
//!   derivation outside the pool internals.
//! * **S1 `seam_enforcement`** — policy crates naming engine mechanism
//!   entry points instead of the `MemoryView`/`PolicyPlan` seam.
//! * **D4 `sched_purity`** — ambient reads inside `Component` impls, which
//!   must derive all behavior from constructor state and event arguments.
//! * **E1 `panic_in_worker`** — panicking calls inside thermo-exec job
//!   closures without an allow-pragma, and (in the executor crate) inside
//!   the Chase-Lev steal path itself.
//! * **E2 `completion_order_merge`** — channel receives in executor code,
//!   which merge results in completion order instead of stable job-id
//!   order and so break byte-identity across `THERMO_JOBS` settings.
//!
//! Flow-aware families (token trees, `flow`) and the cross-file check
//! (`index`) — see DESIGN.md §16:
//!
//! * **R1 `dropped_receipt`** — `apply_plan`/`memory_view` results
//!   discarded (statement-dropped or bound to `_`): an unchecked receipt
//!   hides `Skipped`/bandwidth-deferred ops.
//! * **X1 `plan_op_exhaustiveness`** — every `PlanOp` variant must have a
//!   `local_window()` arm and an `apply_plan` dispatch arm, checked across
//!   files via the symbol index.
//! * **A1 `atomic_ordering`** — `Ordering::Relaxed` on the Chase-Lev
//!   deque's `head`/`tail` in executor steal paths.
//! * **T1 `rng_taint`** — seed/draw values must not escape through
//!   non-decide public fns (intraprocedural taint, sanctioned `draw_*` /
//!   `*_seed` egress names).
//!
//! The workspace walk fans per-file analysis out through `thermo-exec`
//! and merges findings in path order, so reports are byte-stable for any
//! `THERMO_JOBS` value. Violations that predate the linter live in
//! `goldens/lint-baseline.json`: the CI gate fails on *new* findings while
//! grandfathered ones stay visible (and are expected to be counted down
//! to zero). Intentional exceptions are annotated in-source:
//!
//! ```text
//! // thermo-lint: allow(ambient_nondeterminism, reason = "bench harness measures wall-clock by design")
//! ```
//!
//! A suppression must keep earning its place: a valid pragma that
//! suppresses nothing is itself a `bad_pragma` finding (stale pragma).

#![warn(missing_docs)]

pub mod lexer;
pub mod lints;

mod flow;
mod index;
mod tree;

pub use lints::{
    analyze_source, family_code, finish, lint_files, lint_source, FileAnalysis, Finding, Scope,
    LINT_NAMES,
};

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use thermo_util::json::{self, FromJson, ToJson, Value};

/// Collects the workspace's lint subjects under `root`, in sorted order:
/// every `.rs` file below `crates/*/src` and the root package's `src/`.
///
/// Test code is out of scope by construction: integration-test directories
/// (`crates/*/tests`, `tests/`) are never visited, files named `tests.rs`
/// (the `#[cfg(test)] mod tests;` out-of-line pattern) are skipped, and
/// inline `#[cfg(test)]` items are stripped during linting.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        collect_rs(&dir.join("src"), &mut files)?;
    }
    collect_rs(&root.join("src"), &mut files)?;
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "tests") {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs")
            && !path.file_name().is_some_and(|n| n == "tests.rs")
        {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every workspace source under `root`; findings come back sorted by
/// `(file, line, col, lint, …)` so output (and `--json`) is byte-stable.
///
/// Per-file analysis fans out through the thermo-exec work-stealing pool
/// (`THERMO_JOBS` workers); results merge in stable path order, so the
/// report is byte-identical for every worker count.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    lint_workspace_with(root, thermo_exec::jobs_from_env())
}

/// [`lint_workspace`] with an explicit worker count.
pub fn lint_workspace_with(root: &Path, workers: usize) -> io::Result<Vec<Finding>> {
    let mut sources = Vec::new();
    for path in workspace_sources(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = fs::read_to_string(&path)?;
        sources.push((rel, source));
    }
    let jobs: Vec<_> = sources
        .into_iter()
        .map(|(rel, source)| move |_ctx: &thermo_exec::JobCtx| lints::analyze_source(&rel, &source))
        .collect();
    let analyses = thermo_exec::run_jobs(jobs, &thermo_exec::ExecConfig::new(workers, 0))
        .map_err(|e| io::Error::new(io::ErrorKind::Other, e.to_string()))?;
    Ok(lints::finish(analyses))
}

/// Per-lint finding counts, in canonical lint order (then any unknowns).
pub fn counts_by_lint(findings: &[Finding]) -> Vec<(String, usize)> {
    let mut map: BTreeMap<&str, usize> = BTreeMap::new();
    for f in findings {
        *map.entry(f.lint.as_str()).or_insert(0) += 1;
    }
    let mut out = Vec::new();
    for name in LINT_NAMES {
        if let Some(n) = map.remove(name) {
            out.push((name.to_string(), n));
        }
    }
    for (name, n) in map {
        out.push((name.to_string(), n));
    }
    out
}

/// Report format version: bumped when the finding shape changes (v2 added
/// `col` and `family` fields and the flow-aware lint families).
pub const REPORT_VERSION: u64 = 2;

/// Serializes findings as the machine-readable JSON report (the same shape
/// the baseline file uses), pretty-printed with a trailing newline.
pub fn findings_json(findings: &[Finding]) -> String {
    let v = Value::Obj(vec![
        ("version".to_string(), Value::U64(REPORT_VERSION)),
        (
            "findings".to_string(),
            Value::Arr(findings.iter().map(ToJson::to_json).collect()),
        ),
    ]);
    let mut s = json::to_string_pretty(&v);
    s.push('\n');
    s
}

/// The grandfathered-violation baseline (`goldens/lint-baseline.json`).
pub mod baseline {
    use super::*;

    /// Result of comparing fresh findings against a baseline.
    #[derive(Debug, Default)]
    pub struct Comparison {
        /// Findings not present in the baseline — these fail the gate.
        pub new: Vec<Finding>,
        /// Findings also present in the baseline (grandfathered).
        pub grandfathered: Vec<Finding>,
        /// Baseline entries no longer found — fixed; the baseline should
        /// be re-blessed to count them down.
        pub stale: Vec<Finding>,
    }

    /// Loads a baseline file (same JSON shape [`findings_json`] writes).
    pub fn load(path: &Path) -> Result<Vec<Finding>, String> {
        let text = fs::read_to_string(path)
            .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
        parse(&text).map_err(|e| format!("baseline {}: {e}", path.display()))
    }

    /// Parses baseline JSON text.
    pub fn parse(text: &str) -> Result<Vec<Finding>, String> {
        let v = json::parse(text).map_err(|e| e.to_string())?;
        let arr = v
            .get("findings")
            .and_then(Value::as_arr)
            .ok_or("missing `findings` array")?;
        arr.iter()
            .map(|f| Finding::from_json(f).map_err(|e| e.to_string()))
            .collect()
    }

    /// A finding's identity for baseline matching. The message is excluded
    /// so wording tweaks don't un-grandfather old entries; line/column are
    /// included so a baseline survives only as long as the file around it
    /// is untouched — editing a grandfathered site forces a fix or an
    /// explicit re-bless.
    fn key(f: &Finding) -> (&str, &str, u32, u32) {
        (f.lint.as_str(), f.file.as_str(), f.line, f.col)
    }

    /// Splits `findings` into new vs. grandfathered, and reports stale
    /// baseline entries.
    pub fn compare(findings: &[Finding], baseline: &[Finding]) -> Comparison {
        let base: std::collections::BTreeSet<_> = baseline.iter().map(key).collect();
        let seen: std::collections::BTreeSet<_> = findings.iter().map(key).collect();
        let mut cmp = Comparison::default();
        for f in findings {
            if base.contains(&key(f)) {
                cmp.grandfathered.push(f.clone());
            } else {
                cmp.new.push(f.clone());
            }
        }
        for b in baseline {
            if !seen.contains(&key(b)) {
                cmp.stale.push(b.clone());
            }
        }
        cmp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(lint: &str, file: &str, line: u32) -> Finding {
        Finding::new(file, line, 7, lint, "m".into(), "h")
    }

    #[test]
    fn baseline_roundtrip_and_compare() {
        let base = vec![f("seam_enforcement", "crates/x/src/a.rs", 10)];
        let text = findings_json(&base);
        let parsed = baseline::parse(&text).unwrap();
        assert_eq!(parsed, base);

        let findings = vec![
            f("seam_enforcement", "crates/x/src/a.rs", 10),
            f("unordered_iteration", "crates/x/src/b.rs", 3),
        ];
        let cmp = baseline::compare(&findings, &parsed);
        assert_eq!(cmp.grandfathered.len(), 1);
        assert_eq!(cmp.new.len(), 1);
        assert_eq!(cmp.new[0].lint, "unordered_iteration");
        assert!(cmp.stale.is_empty());

        let cmp = baseline::compare(&[], &parsed);
        assert_eq!(cmp.stale.len(), 1);
    }

    #[test]
    fn findings_json_is_byte_stable() {
        let findings = vec![
            f("unordered_iteration", "a.rs", 1),
            f("seam_enforcement", "b.rs", 2),
        ];
        assert_eq!(findings_json(&findings), findings_json(&findings.clone()));
    }
}

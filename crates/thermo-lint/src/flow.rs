//! Flow-aware lint families over token trees (DESIGN.md §16).
//!
//! * **R1 `dropped_receipt`** — a statement-form call to `apply_plan` /
//!   `memory_view` whose result is discarded (or bound to the `_`
//!   wildcard). `apply_plan` reports per-op [`OpOutcome`]s; dropping the
//!   receipt silently swallows `Skipped`/`Failed` ops, which is exactly
//!   how a policy's view of memory drifts from the engine's.
//! * **A1 `atomic_ordering`** — `Ordering::Relaxed` combined with a
//!   `head`/`tail` atomic op in executor code. The Chase–Lev deque's
//!   correctness argument (DESIGN.md §15) is written entirely in terms
//!   of Acquire/Release edges; a Relaxed access on the claim path is a
//!   latent double-execution bug that no test reliably catches.
//! * **T1 `rng_taint`** — intraprocedural taint: values produced by
//!   seed-derivation or `draw_*` calls (and, inside `decide.rs`, raw RNG
//!   draw methods) must not flow out of a bare-`pub` fn through `return`
//!   or its tail expression, unless the fn itself is sanctioned egress
//!   (named `draw_*` or `*_seed`). This upgrades D3 from "where may a
//!   draw appear" to "where may the drawn *value* go": decide.rs exports
//!   decisions, not entropy.
//!
//! The taint pass is deliberately conservative in both directions and
//! deterministic: bindings via `let name = …` and `name = …` propagate,
//! tuple/struct destructuring over-taints the first bound name, passing
//! a tainted value as a call argument counts as consumption, and a tail
//! expression ending in a block (`if`/`match`) is not scanned. Every
//! escape it cannot see is still bounded by D3's draw-site containment.

use crate::lexer::{Token, TokenKind};
use crate::lints::{Finding, RNG_DRAW_METHODS};
use crate::tree::{self, Flat, Tree, Vis};

/// Methods whose results are engine receipts/snapshots (R1).
const RECEIPT_METHODS: [&str; 3] = ["apply_plan", "memory_view", "memory_view_uncharged"];

/// Seed-derivation fns whose results are taint sources everywhere (T1).
const TAINT_SEED_FNS: [&str; 2] = ["derive_stream_seed", "splitmix64"];

/// Atomic read-modify-write / load / store method names (A1).
const ATOMIC_OPS: [&str; 10] = [
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
];

/// R1: walks every brace block, splitting its direct children into
/// `;`-terminated statements; a statement whose value is a receipt-method
/// call and whose head neither binds nor inspects it is a finding.
pub fn lint_dropped_receipt(trees: &[Tree], file: &str, findings: &mut Vec<Finding>) {
    for t in trees {
        if let Some(g) = t.group() {
            if g.delim == '{' {
                scan_block(&g.children, file, findings);
            }
            lint_dropped_receipt(&g.children, file, findings);
        }
    }
}

fn scan_block(children: &[Tree], file: &str, findings: &mut Vec<Finding>) {
    let stmts: Vec<&[Tree]> = children.split(|t| t.is_punct(';')).collect();
    for (idx, stmt) in stmts.iter().enumerate() {
        // The chunk after the last `;` is the block's tail expression:
        // its value is the block's value, so a receipt there is used.
        let terminated = idx + 1 < stmts.len();
        if !terminated || stmt.len() < 3 {
            continue;
        }
        // Statement-final receipt call: `… . <method> ( … )` then `;`.
        let last = &stmt[stmt.len() - 1];
        let method = &stmt[stmt.len() - 2];
        let dot = &stmt[stmt.len() - 3];
        let is_receipt_call = last.group().is_some_and(|g| g.delim == '(')
            && method.ident().is_some_and(|m| RECEIPT_METHODS.contains(&m))
            && dot.is_punct('.');
        if !is_receipt_call {
            continue;
        }
        let name = method.ident().unwrap_or_default();
        let (line, col) = method.pos();
        if let Some(bind) = let_binding_name(stmt) {
            if bind == "_" {
                findings.push(Finding::new(
                    file,
                    line,
                    col,
                    "dropped_receipt",
                    format!(
                        "`{name}` result bound to `_`: the wildcard discards the receipt without inspecting any outcome"
                    ),
                    "bind it to a name and check it (e.g. debug_assert every OpOutcome is Done), or allow(dropped_receipt) with a reason",
                ));
            }
            continue; // bound to a real name: used
        }
        if stmt_consumes_value(stmt) {
            continue;
        }
        findings.push(Finding::new(
            file,
            line,
            col,
            "dropped_receipt",
            format!(
                "`{name}` receipt discarded: every plan/view outcome must be inspected or explicitly allowed"
            ),
            "bind the result and check it (e.g. debug_assert every OpOutcome is Done), or allow(dropped_receipt) with a reason",
        ));
    }
}

/// The name a `let` statement binds, when the statement is one.
fn let_binding_name(stmt: &[Tree]) -> Option<&str> {
    if stmt.first()?.ident()? != "let" {
        return None;
    }
    stmt.iter()
        .skip(1)
        .filter_map(|t| t.ident())
        .find(|id| *id != "mut")
}

/// True when the statement's head consumes the trailing call's value:
/// an assignment, a `return`, or a value-inspecting keyword.
fn stmt_consumes_value(stmt: &[Tree]) -> bool {
    if let Some(head) = stmt.first().and_then(Tree::ident) {
        if matches!(
            head,
            "return" | "if" | "match" | "while" | "for" | "loop" | "break"
        ) {
            return true;
        }
    }
    // A top-level `=` (not part of `==`, `<=`, `=>`, …) binds the value.
    stmt.iter().enumerate().any(|(i, t)| {
        t.is_punct('=')
            && !stmt
                .get(i + 1)
                .is_some_and(|n| n.is_punct('=') || n.is_punct('>'))
            && !(i > 0 && "=<>!+-*/%&|^".chars().any(|c| stmt[i - 1].is_punct(c)))
    })
}

/// A1: `Ordering::Relaxed` in the same statement as a `head`/`tail`
/// atomic op. Runs on the flat (cfg-test-stripped) token stream.
pub fn lint_atomic_ordering(tokens: &[Token], file: &str, findings: &mut Vec<Finding>) {
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind.ident() != Some("Relaxed") {
            continue;
        }
        let is_boundary = |t: &Token| {
            matches!(
                t.kind,
                TokenKind::Punct(';') | TokenKind::Punct('{') | TokenKind::Punct('}')
            )
        };
        let start = tokens[..i]
            .iter()
            .rposition(is_boundary)
            .map_or(0, |p| p + 1);
        let end = tokens[i..]
            .iter()
            .position(is_boundary)
            .map_or(tokens.len(), |p| i + p);
        let window = &tokens[start..end];
        let field = window
            .iter()
            .filter_map(|t| t.kind.ident())
            .find(|id| *id == "head" || *id == "tail");
        let op = window.iter().enumerate().find_map(|(k, t)| {
            let id = t.kind.ident()?;
            let prev_dot = k > 0 && window[k - 1].kind == TokenKind::Punct('.');
            (prev_dot && ATOMIC_OPS.contains(&id)).then_some(id)
        });
        if let (Some(field), Some(op)) = (field, op) {
            findings.push(Finding::new(
                file,
                tok.line,
                tok.col,
                "atomic_ordering",
                format!(
                    "`Ordering::Relaxed` on deque `{field}` `{op}`: the Chase-Lev claim protocol is specified in Acquire/Release edges only"
                ),
                "use Acquire for loads and AcqRel for RMWs on head/tail (DESIGN.md §15), or allow(atomic_ordering) with a reason",
            ));
        }
    }
}

/// T1: per-fn taint scan. `is_decide` widens the source set to raw RNG
/// draw methods (legal to *call* there, still illegal to *export*).
pub fn lint_rng_taint(trees: &[Tree], file: &str, is_decide: bool, findings: &mut Vec<Finding>) {
    tree::walk_items(
        trees,
        &mut |f| {
            if f.vis != Vis::Pub || sanctioned_egress(f.name) {
                return;
            }
            let Some(body) = f.body else { return };
            let mut flat = Vec::new();
            tree::flatten(&body.children, &mut flat);
            taint_scan(&flat, f.name, file, is_decide, findings);
        },
        &mut |_| {},
    );
}

/// Fns allowed to return entropy: the sanctioned egress naming scheme.
fn sanctioned_egress(name: &str) -> bool {
    name.starts_with("draw_") || name.ends_with("_seed")
}

fn taint_scan(
    flat: &[Flat<'_>],
    fn_name: &str,
    file: &str,
    is_decide: bool,
    findings: &mut Vec<Finding>,
) {
    let mut taint: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let mut seg_start = 0usize;
    let mut i = 0usize;
    while i <= flat.len() {
        let boundary = match flat.get(i) {
            None => true,
            Some(f) => f.is_punct(';') || f.is_brace_boundary(),
        };
        if boundary {
            let seg = &flat[seg_start..i];
            let is_tail = i == flat.len();
            process_segment(seg, is_tail, fn_name, file, is_decide, &mut taint, findings);
            seg_start = i + 1;
        }
        i += 1;
    }
}

fn process_segment(
    seg: &[Flat<'_>],
    is_tail: bool,
    fn_name: &str,
    file: &str,
    is_decide: bool,
    taint: &mut std::collections::BTreeSet<String>,
    findings: &mut Vec<Finding>,
) {
    if seg.is_empty() {
        return;
    }
    let sink = |findings: &mut Vec<Finding>, line: u32, col: u32, how: &str| {
        findings.push(Finding::new(
            file,
            line,
            col,
            "rng_taint",
            format!(
                "RNG-derived value flows out of pub fn `{fn_name}` via {how}: decide.rs exports decisions, not entropy"
            ),
            "return a decision (index, bool, plan) computed from the draw, or mark sanctioned egress by naming the fn draw_*/*_seed, or allow(rng_taint) with a reason",
        ));
    };
    // `return <expr>` anywhere in the segment (match arms put it mid-seg).
    if let Some(r) = seg.iter().position(|f| f.ident() == Some("return")) {
        if expr_tainted(&seg[r + 1..], taint, is_decide) {
            let (line, col) = seg[r].pos();
            sink(findings, line, col, "`return`");
        }
        return;
    }
    // `let [mut] name [: T] = rhs` — bind or clear.
    if seg[0].ident() == Some("let") {
        let name = seg
            .iter()
            .skip(1)
            .filter_map(|f| f.ident())
            .find(|id| *id != "mut");
        let eq = top_level_eq(seg);
        if let Some(name) = name {
            let tainted = eq.is_some_and(|e| expr_tainted(&seg[e + 1..], taint, is_decide));
            if tainted {
                taint.insert(name.to_string());
            } else {
                taint.remove(name);
            }
        }
        return;
    }
    // `name = rhs` — simple reassignment at segment head.
    if seg.len() >= 3 {
        if let Some(name) = seg[0].ident() {
            if seg[1].is_punct('=') && !seg[2].is_punct('=') {
                if expr_tainted(&seg[2..], taint, is_decide) {
                    taint.insert(name.to_string());
                } else {
                    taint.remove(name);
                }
                return;
            }
        }
    }
    if is_tail && expr_tainted(seg, taint, is_decide) {
        let (line, col) = seg[0].pos();
        sink(findings, line, col, "its tail expression");
    }
}

/// Position of the first top-level `=` (not `==`/`=>`/compound-assign).
fn top_level_eq(seg: &[Flat<'_>]) -> Option<usize> {
    seg.iter().enumerate().position(|(i, f)| {
        f.is_punct('=')
            && !seg
                .get(i + 1)
                .is_some_and(|n| n.is_punct('=') || n.is_punct('>'))
            && !(i > 0 && "=<>!+-*/%&|^".chars().any(|c| seg[i - 1].is_punct(c)))
    })
}

/// True when the expression window produces a tainted value: it calls a
/// taint source, or names a tainted binding in value position.
///
/// Anything inside a *call's* argument group is consumption, not flow —
/// `pick(s, n)` launders `s` into a decision — so both tainted idents
/// and nested sources are muted there. Grouping parens (`(s)`, tuples)
/// still count: they forward the value unchanged.
fn expr_tainted(
    window: &[Flat<'_>],
    taint: &std::collections::BTreeSet<String>,
    is_decide: bool,
) -> bool {
    // Per open paren group: was it a call-argument group?
    let mut stack: Vec<bool> = Vec::new();
    let mut muted_depth = 0usize;
    for (k, f) in window.iter().enumerate() {
        if let Flat::Open(g) = f {
            if g.delim == '(' {
                let is_call = k > 0
                    && (window[k - 1].ident().is_some()
                        || matches!(window[k - 1], Flat::Close(p) if p.delim != '{'));
                stack.push(is_call);
                muted_depth += usize::from(is_call);
            }
            continue;
        }
        if let Flat::Close(g) = f {
            if g.delim == '(' {
                if let Some(was_call) = stack.pop() {
                    muted_depth -= usize::from(was_call);
                }
            }
            continue;
        }
        let Some(id) = f.ident() else { continue };
        let calls = window.get(k + 1).is_some_and(Flat::opens_paren);
        let prev_dot = k > 0 && window[k - 1].is_punct('.');
        if muted_depth > 0 {
            continue;
        }
        if calls
            && (TAINT_SEED_FNS.contains(&id) || id.starts_with("draw_") || id.ends_with("_seed"))
        {
            return true;
        }
        if is_decide && calls && prev_dot && RNG_DRAW_METHODS.contains(&id) {
            return true;
        }
        if taint.contains(id) {
            // Skip path segments (`x::`), field accesses (`.x`), and
            // struct-literal field names (`x:` but not `x::`).
            let prev_colon = k > 0 && window[k - 1].is_punct(':');
            let next_colon = window.get(k + 1).is_some_and(|n| n.is_punct(':'));
            let next2_colon = window.get(k + 2).is_some_and(|n| n.is_punct(':'));
            let field_name = next_colon && !next2_colon;
            if !prev_dot && !prev_colon && !field_name {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::lints::strip_cfg_test;

    fn run_r1(src: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        lint_dropped_receipt(&tree::build(&lex(src).tokens), "x.rs", &mut out);
        out
    }

    fn run_t1(src: &str, is_decide: bool) -> Vec<Finding> {
        let mut out = Vec::new();
        lint_rng_taint(&tree::build(&lex(src).tokens), "x.rs", is_decide, &mut out);
        out
    }

    #[test]
    fn dropped_and_wildcard_receipts_are_findings() {
        let src = "
            fn f(engine: &mut Engine, plan: &PolicyPlan) {
                engine.apply_plan(plan);
                let _ = engine.apply_plan(plan);
                let receipt = engine.apply_plan(plan);
                drop(receipt);
            }
        ";
        let found = run_r1(src);
        assert_eq!(found.len(), 2, "{found:#?}");
        assert_eq!(found[0].line, 3);
        assert_eq!(found[1].line, 4);
    }

    #[test]
    fn inspected_receipts_are_clean() {
        let src = "
            fn f(engine: &mut Engine, plan: &PolicyPlan) -> PlanReceipt {
                let r = engine.apply_plan(plan);
                if engine.memory_view(x, 1).pages().is_empty() { return r; }
                match engine.apply_plan(plan) { r => r }
            }
            fn tail(engine: &mut Engine) -> MemoryView {
                engine.memory_view(x, 1)
            }
        ";
        assert!(run_r1(src).is_empty(), "{:#?}", run_r1(src));
    }

    #[test]
    fn taint_flows_through_lets_to_return_and_tail() {
        let src = "
            pub fn leak_tail(base: u64) -> u64 {
                let s = derive_stream_seed(base, 1);
                s
            }
            pub fn leak_return(base: u64) -> u64 {
                let s = splitmix64(base);
                let t = s + 1;
                return t;
            }
        ";
        let found = run_t1(src, false);
        assert_eq!(found.len(), 2, "{found:#?}");
    }

    #[test]
    fn consumption_and_sanctioned_names_are_clean() {
        let src = "
            pub fn decide(base: u64, n: usize) -> usize {
                let s = derive_stream_seed(base, 1);
                pick(s, n)
            }
            pub fn draw_value(base: u64) -> u64 {
                derive_stream_seed(base, 2)
            }
            pub fn stream_seed(base: u64) -> u64 {
                derive_stream_seed(base, 3)
            }
            fn private_leak(base: u64) -> u64 {
                derive_stream_seed(base, 4)
            }
            pub(crate) fn restricted_leak(base: u64) -> u64 {
                derive_stream_seed(base, 5)
            }
        ";
        let found = run_t1(src, false);
        assert!(found.is_empty(), "{found:#?}");
    }

    #[test]
    fn draw_methods_are_sources_only_in_decide() {
        let src = "
            pub fn probe(rng: &mut SmallRng, n: usize) -> usize {
                rng.gen_range(0..n)
            }
        ";
        assert_eq!(run_t1(src, true).len(), 1);
        assert!(run_t1(src, false).is_empty());
    }

    #[test]
    fn untainting_reassignment_clears() {
        let src = "
            pub fn fixed(base: u64) -> u64 {
                let mut s = derive_stream_seed(base, 1);
                s = 7;
                s
            }
        ";
        assert!(run_t1(src, false).is_empty());
    }

    #[test]
    fn relaxed_on_deque_fields_is_flagged() {
        let src = "
            fn pop(&self) {
                let h = self.head.load(Ordering::Relaxed);
                let t = self.tail.load(Ordering::Acquire);
                let n = self.len.load(Ordering::Relaxed);
            }
        ";
        let toks = strip_cfg_test(&lex(src).tokens);
        let mut out = Vec::new();
        lint_atomic_ordering(&toks, "x.rs", &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].line, 3);
    }
}

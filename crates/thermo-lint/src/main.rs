//! The `thermo-lint` binary: walks `crates/*/src` (plus the root package's
//! `src/`), reports invariant violations with `file:line:col`, lint name,
//! and a fix hint, and gates against the grandfathered baseline.
//!
//! ```text
//! thermo-lint [--root DIR] [--json] [--baseline FILE] [--write-baseline FILE] [FILE…]
//! ```
//!
//! * `--root DIR` — workspace root (default: the current directory).
//! * `--baseline FILE` — compare against a grandfathered baseline; only
//!   *new* findings fail the gate (exit 1). Without a baseline, any
//!   finding fails.
//! * `--write-baseline FILE` — bless the current findings as the new
//!   baseline (exits 0).
//! * `--json` — machine-readable report on stdout (byte-stable ordering,
//!   same shape as the baseline file) for CI diffing.
//! * `FILE…` — lint only these files (workspace-relative), e.g. for
//!   editor integration; the baseline gate still applies.
//!
//! Exit codes: 0 clean, 1 violations, 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use thermo_lint::{baseline, counts_by_lint, family_code, findings_json, Finding};

struct Args {
    root: PathBuf,
    json: bool,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    files: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        json: false,
        baseline: None,
        write_baseline: None,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => args.root = it.next().ok_or("--root needs a directory")?.into(),
            "--json" => args.json = true,
            "--baseline" => {
                args.baseline = Some(it.next().ok_or("--baseline needs a file")?.into());
            }
            "--write-baseline" => {
                args.write_baseline =
                    Some(it.next().ok_or("--write-baseline needs a file")?.into());
            }
            "--help" | "-h" => {
                return Err(
                    "usage: thermo-lint [--root DIR] [--json] [--baseline FILE] \
                     [--write-baseline FILE] [FILE…]"
                        .to_string(),
                );
            }
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            other => args.files.push(other.to_string()),
        }
    }
    Ok(args)
}

fn run(args: &Args) -> Result<ExitCode, String> {
    let findings: Vec<Finding> = if args.files.is_empty() {
        thermo_lint::lint_workspace(&args.root).map_err(|e| format!("walk failed: {e}"))?
    } else {
        // Explicit files are linted together so the cross-file checks
        // (X1) see each other's symbols.
        let mut sources = Vec::new();
        for rel in &args.files {
            let path = args.root.join(rel);
            let source = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            sources.push((rel.clone(), source));
        }
        thermo_lint::lint_files(&sources)
    };

    if let Some(path) = &args.write_baseline {
        std::fs::write(path, findings_json(&findings))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!(
            "thermo-lint: blessed {} finding(s) into {}",
            findings.len(),
            path.display()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let base = match &args.baseline {
        Some(p) => baseline::load(p)?,
        None => Vec::new(),
    };
    let cmp = baseline::compare(&findings, &base);

    if args.json {
        print!("{}", findings_json(&findings));
    } else {
        report_human(&cmp);
    }
    Ok(if cmp.new.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn report_human(cmp: &baseline::Comparison) {
    for f in &cmp.new {
        println!(
            "{}:{}:{}: [{}/{}] {}",
            f.file,
            f.line,
            f.col,
            family_code(&f.lint),
            f.lint,
            f.message
        );
        println!("    hint: {}", f.hint);
    }
    let all: Vec<Finding> = cmp
        .new
        .iter()
        .chain(cmp.grandfathered.iter())
        .cloned()
        .collect();
    if all.is_empty() && cmp.stale.is_empty() {
        println!("thermo-lint: clean (0 findings)");
        return;
    }
    println!("per-lint counts:");
    for (lint, n) in counts_by_lint(&all) {
        let grandfathered = cmp.grandfathered.iter().filter(|f| f.lint == lint).count();
        println!(
            "    {:<10} {:<24} {:>3} ({} grandfathered)",
            family_code(&lint),
            lint,
            n,
            grandfathered
        );
    }
    println!(
        "thermo-lint: {} new, {} grandfathered (baseline), {} stale baseline entr{}",
        cmp.new.len(),
        cmp.grandfathered.len(),
        cmp.stale.len(),
        if cmp.stale.len() == 1 { "y" } else { "ies" }
    );
    for s in &cmp.stale {
        println!(
            "    stale: {}:{}:{} [{}] — fixed; re-bless to count the baseline down",
            s.file, s.line, s.col, s.lint
        );
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("thermo-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

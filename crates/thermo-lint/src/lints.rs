//! The lint families: token-stream pattern matches over one source file.
//!
//! Each family guards one determinism property the golden-artifact gate
//! relies on (DESIGN.md §11):
//!
//! | lint                     | family | property                                   |
//! |--------------------------|--------|--------------------------------------------|
//! | `unordered_iteration`    | D1     | artifact paths iterate ordered maps only   |
//! | `ambient_nondeterminism` | D2     | sim state is a pure function of the seed   |
//! | `rng_containment`        | D3     | policy RNG draws live in `decide.rs` only  |
//! | `seam_enforcement`       | S1     | policies speak `MemoryView`/`PolicyPlan`   |
//! | `panic_in_worker`        | E1     | job closures don't panic without a pragma  |
//! | `sched_purity`           | D4     | `Component` impls see only virtual time    |
//! | `completion_order_merge` | E2     | executor merges by job id, never arrival   |
//! | `dropped_receipt`        | R1     | `apply_plan`/`memory_view` results checked |
//! | `plan_op_exhaustiveness` | X1     | every `PlanOp` has window + dispatch arms  |
//! | `atomic_ordering`        | A1     | Chase-Lev head/tail never `Relaxed`        |
//! | `rng_taint`              | T1     | entropy values stay behind decide.rs       |
//!
//! D1–D4, S1, E1, E2 are token-stream pattern matches; R1/A1/T1 are
//! flow-aware passes over token trees ([`crate::flow`]) and X1 is a
//! cross-file check over the symbol index ([`crate::index`]) — see
//! DESIGN.md §16 for the grammar and per-family rationale.
//!
//! An additional internal lint, `bad_pragma`, fires on malformed
//! suppression pragmas (unknown lint name, missing reason) — and, since
//! the stale-pragma pass, on *valid* pragmas that suppress nothing — so
//! a typo can never silently disable a real check and a suppression can
//! never outlive the code it excused.
//!
//! D4 exists because D2 cannot cover the scheduler seam: `Component`
//! impls may live in ambient-allowlisted crates (thermo-bench adapters),
//! yet the event loop's ordering-fuzz contract (DESIGN.md §13) requires
//! every tick to be a pure function of component state + the virtual
//! timeline — no wall clocks, no env reads, no thread identity, no
//! external entropy, anywhere a `Component` is implemented.
//!
//! E2 covers the work-stealing executor's merge discipline (DESIGN.md
//! §15): results must be indexed and merged by stable job id. Any
//! channel-receive in executor code is the canonical way to accidentally
//! merge in *completion* order — which varies with steal interleaving —
//! so E2 bans the recv family there outright. E1's closure pass is
//! complemented by a steal-path pass: panicky calls inside any
//! `fn …steal…` can fire on a thief's stack mid-claim, turning a benign
//! race retry into a batch abort.

use crate::lexer::{lex, PragmaComment, Token, TokenKind};

/// Canonical lint names, in family order.
pub const LINT_NAMES: [&str; 12] = [
    "unordered_iteration",
    "ambient_nondeterminism",
    "rng_containment",
    "seam_enforcement",
    "panic_in_worker",
    "sched_purity",
    "completion_order_merge",
    "dropped_receipt",
    "plan_op_exhaustiveness",
    "atomic_ordering",
    "rng_taint",
    "bad_pragma",
];

/// Short family code for a lint name (shown in reports).
pub fn family_code(lint: &str) -> &'static str {
    match lint {
        "unordered_iteration" => "D1",
        "ambient_nondeterminism" => "D2",
        "rng_containment" => "D3",
        "seam_enforcement" => "S1",
        "panic_in_worker" => "E1",
        "sched_purity" => "D4",
        "completion_order_merge" => "E2",
        "dropped_receipt" => "R1",
        "plan_op_exhaustiveness" => "X1",
        "atomic_ordering" => "A1",
        "rng_taint" => "T1",
        _ => "P0",
    }
}

/// Resolves a pragma lint name (canonical or alias) to its canonical name.
fn canonical_lint(name: &str) -> Option<&'static str> {
    match name {
        // `panic` is the issue-text shorthand for the worker-panic lint.
        "panic" => Some("panic_in_worker"),
        other => LINT_NAMES
            .iter()
            .find(|l| **l == other)
            .copied()
            .filter(|l| *l != "bad_pragma"),
    }
}

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Canonical lint name.
    pub lint: String,
    /// Short family code (`D1`, `R1`, …), derived from the lint name.
    pub family: String,
    /// What was found.
    pub message: String,
    /// How to fix it.
    pub hint: String,
}

thermo_util::json_struct!(Finding {
    file,
    line,
    col,
    lint,
    family,
    message,
    hint
});

impl Finding {
    /// Builds a finding, deriving the family code from the lint name.
    pub fn new(
        file: &str,
        line: u32,
        col: u32,
        lint: &str,
        message: String,
        hint: &str,
    ) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            col,
            lint: lint.to_string(),
            family: family_code(lint).to_string(),
            message,
            hint: hint.to_string(),
        }
    }
}

/// Which lint families apply to a file, derived from its workspace path.
///
/// The scoping encodes the workspace's architecture (DESIGN.md §11):
///
/// * **Artifact crates** (everything that computes or merges experiment
///   state) must iterate ordered maps — D1. The two infrastructure crates
///   `thermo-util` (codec/bench harness) and `thermo-lint` itself are
///   exempt by omission, though neither uses hash maps today.
/// * **D2** applies everywhere except the wall-clock reporting paths:
///   the `thermo-bench` crate (prints per-experiment timings) — everything
///   else must run on virtual time only.
/// * **D3** confines RNG draws in the simulation and policy crates to
///   `decide.rs` modules; `thermo-util`/`thermo-exec` internals (the RNG
///   and the seed-deriving pool) are the only other legal homes. Workload
///   crates draw from seeded streams by design and are out of scope.
/// * **S1** applies to the policy crates only.
/// * **E1** applies everywhere a `JobCtx` closure can appear.
#[derive(Debug, Clone)]
pub struct Scope {
    /// Crate name (`thermo-sim`, …; the root package is `thermostat-suite`).
    pub crate_name: String,
    /// D1 applies.
    pub artifact: bool,
    /// D2 applies (not a wall-clock reporting path).
    pub ambient: bool,
    /// D3 applies to `rng.<draw>()` method calls (policy/sim crate, and
    /// this file is not a `decide.rs`).
    pub rng: bool,
    /// D3 applies to seed-derivation free functions (everywhere outside
    /// `thermo-util`/`thermo-exec` internals and `decide.rs`).
    pub rng_fns: bool,
    /// S1 applies.
    pub seam: bool,
    /// E2 applies (executor code: merge discipline is job-id order).
    pub exec: bool,
    /// R1 applies (artifact crates touch engine receipts).
    pub receipt: bool,
    /// A1 applies (the executor crate's Chase-Lev deque).
    pub atomic: bool,
    /// T1 applies (everywhere outside the sanctioned RNG home,
    /// `thermo-util`, and the linter itself).
    pub taint: bool,
    /// This file is a `decide.rs` (T1 treats raw draw methods as
    /// sources there; D3 exempts it from draw-site findings).
    pub is_decide: bool,
}

/// Crates whose state can reach a golden artifact (D1 scope).
const ARTIFACT_CRATES: [&str; 11] = [
    "thermo-mem",
    "thermo-vm",
    "thermo-trap",
    "thermo-sim",
    "thermo-kstaled",
    "thermostat",
    "thermo-workloads",
    "thermo-scenario",
    "thermo-bench",
    "thermo-exec",
    "thermostat-suite",
];

/// Crates whose RNG draws must stay inside `decide.rs` modules (D3 scope).
const RNG_SCOPED_CRATES: [&str; 3] = ["thermo-sim", "thermostat", "thermo-kstaled"];

/// Policy crates that must speak only the engine seam (S1 scope).
const POLICY_CRATES: [&str; 2] = ["thermostat", "thermo-kstaled"];

/// Paths (prefix match) where wall-clock reads are legitimate: bench
/// reporting. `scripts/` is listed for completeness should it ever grow
/// Rust sources.
const AMBIENT_ALLOWED_PREFIXES: [&str; 2] = ["crates/thermo-bench/", "scripts/"];

/// Engine mechanism entry points policies may not name (S1). Policies get
/// the same effects through `PolicyPlan` ops applied by `apply_plan`.
const SEAM_FORBIDDEN: [&str; 10] = [
    "scan_and_clear_accessed",
    "read_accessed",
    "clear_accessed_set",
    "migrate_page",
    "migrate_split_huge",
    "split_huge",
    "collapse_huge",
    "poison_page",
    "unpoison_page",
    "trap_mut",
];

/// RNG draw methods (`rng.<method>(…)`) counted as draws by D3 (and as
/// taint sources by T1 inside `decide.rs`).
pub(crate) const RNG_DRAW_METHODS: [&str; 8] = [
    "gen",
    "gen_range",
    "gen_bool",
    "next_u32",
    "next_u64",
    "fill_bytes",
    "shuffle",
    "choose",
];

/// Seed-derivation free functions (D3): legal only inside
/// `thermo-util`/`thermo-exec` (the pool derives per-job seeds) and
/// `decide.rs` modules — ad-hoc seed splitting anywhere else forks the
/// workspace's single seed-stream discipline.
const RNG_SEED_FNS: [&str; 2] = ["derive_stream_seed", "splitmix64"];

/// Draw-like free functions (D3), scoped like the draw methods (workload
/// crates call these from seeded streams by design).
const RNG_DRAW_FNS: [&str; 1] = ["zipf_rank"];

/// Ambient nondeterminism sources (D2): bare identifiers…
const AMBIENT_IDENTS: [&str; 3] = ["Instant", "SystemTime", "UNIX_EPOCH"];

/// …and `<root>::`-qualified crate paths (`rand::…`, `getrandom::…`).
const AMBIENT_CRATE_PATHS: [&str; 3] = ["rand", "getrandom", "chrono"];

impl Scope {
    /// Derives the scope for a workspace-relative path.
    pub fn for_path(rel_path: &str) -> Self {
        let rel = rel_path.replace('\\', "/");
        let crate_name = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("thermostat-suite")
            .to_string();
        let is_decide = rel.ends_with("/decide.rs") || rel == "decide.rs";
        let rng_internal = matches!(crate_name.as_str(), "thermo-util" | "thermo-exec");
        Scope {
            artifact: ARTIFACT_CRATES.contains(&crate_name.as_str()),
            ambient: !AMBIENT_ALLOWED_PREFIXES.iter().any(|p| rel.starts_with(p)),
            rng: RNG_SCOPED_CRATES.contains(&crate_name.as_str()) && !is_decide,
            rng_fns: !rng_internal && !is_decide,
            seam: POLICY_CRATES.contains(&crate_name.as_str()),
            exec: crate_name == "thermo-exec",
            receipt: ARTIFACT_CRATES.contains(&crate_name.as_str()),
            atomic: crate_name == "thermo-exec",
            taint: !matches!(crate_name.as_str(), "thermo-util" | "thermo-lint"),
            is_decide,
            crate_name,
        }
    }
}

/// Channel-receive methods (`.recv()`-family) counted as completion-order
/// merges by E2 when they appear in executor code.
const RECV_METHODS: [&str; 3] = ["recv", "try_recv", "recv_timeout"];

/// A parsed, validated suppression pragma.
#[derive(Debug)]
pub(crate) struct Pragma {
    line: u32,
    col: u32,
    lints: Vec<&'static str>,
}

/// Parses pragma comments; malformed ones become `bad_pragma` findings.
///
/// Grammar: `// thermo-lint: allow(<lint>[, <lint>…], reason = "…")` —
/// the reason is mandatory, so every suppression documents *why* the
/// invariant does not apply at that site.
fn parse_pragmas(
    comments: &[PragmaComment],
    file: &str,
    findings: &mut Vec<Finding>,
) -> Vec<Pragma> {
    let mut pragmas = Vec::new();
    for c in comments {
        let bad = |msg: &str| {
            Finding::new(
                file,
                c.line,
                c.col,
                "bad_pragma",
                format!("{msg}: `{}`", c.text),
                "write `// thermo-lint: allow(<lint>, reason = \"…\")`",
            )
        };
        let Some(args) = c
            .text
            .strip_prefix("allow(")
            .and_then(|r| r.trim_end().strip_suffix(')'))
        else {
            findings.push(bad("unrecognized thermo-lint pragma"));
            continue;
        };
        let mut lints = Vec::new();
        let mut reason = false;
        // Split on top-level commas; the reason string never contains one
        // we care about because everything after `reason =` is accepted.
        let mut rest = args;
        loop {
            let (head, tail) = match rest.split_once(',') {
                Some((h, t)) => (h.trim(), Some(t.trim())),
                None => (rest.trim(), None),
            };
            if let Some(r) = head.strip_prefix("reason") {
                let r = r.trim_start();
                if let Some(q) = r.strip_prefix('=') {
                    let q = q.trim();
                    if q.len() > 2 && q.starts_with('"') && q.ends_with('"') {
                        reason = true;
                    }
                }
                // The reason may itself contain commas; stop splitting.
                break;
            }
            match canonical_lint(head) {
                Some(l) => lints.push(l),
                None => {
                    findings.push(bad(&format!("unknown lint `{head}` in pragma")));
                }
            }
            match tail {
                Some(t) => rest = t,
                None => break,
            }
        }
        if lints.is_empty() {
            findings.push(bad("pragma names no known lint"));
            continue;
        }
        if !reason {
            findings.push(bad("suppression without a reason"));
            continue;
        }
        pragmas.push(Pragma {
            line: c.line,
            col: c.col,
            lints,
        });
    }
    pragmas
}

/// Removes tokens inside `#[cfg(test)]`-gated items (and skips attribute
/// contents generally, so `#[derive(Hash)]` never looks like code).
///
/// This is the "lightweight item resolver": it only understands enough
/// item structure to find where a gated item ends — the next `;` at
/// brace/paren depth zero, or the close of the item's first `{ … }` block.
pub(crate) fn strip_cfg_test(tokens: &[Token]) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].kind == TokenKind::Punct('#') {
            // Inner attribute `#![…]`: skip the bracket group only.
            let (attr_start, is_inner) = match tokens.get(i + 1).map(|t| &t.kind) {
                Some(TokenKind::Punct('!'))
                    if matches!(
                        tokens.get(i + 2).map(|t| &t.kind),
                        Some(TokenKind::Punct('['))
                    ) =>
                {
                    (i + 2, true)
                }
                Some(TokenKind::Punct('[')) => (i + 1, false),
                _ => {
                    out.push(tokens[i].clone());
                    i += 1;
                    continue;
                }
            };
            // Find the matching `]`.
            let mut depth = 0i32;
            let mut j = attr_start;
            let mut is_cfg_test = false;
            let mut attr_idents: Vec<&str> = Vec::new();
            while j < tokens.len() {
                match &tokens[j].kind {
                    TokenKind::Punct('[') => depth += 1,
                    TokenKind::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokenKind::Ident(s) => attr_idents.push(s),
                    _ => {}
                }
                j += 1;
            }
            if !is_inner
                && attr_idents.first() == Some(&"cfg")
                && attr_idents.iter().any(|s| *s == "test")
            {
                is_cfg_test = true;
            }
            i = j + 1; // past the `]` (attribute tokens are always dropped)
            if !is_cfg_test {
                continue;
            }
            // Skip any further attributes on the same item…
            while i < tokens.len() && tokens[i].kind == TokenKind::Punct('#') {
                let mut d = 0i32;
                let mut entered = false;
                while i < tokens.len() {
                    match tokens[i].kind {
                        TokenKind::Punct('[') => {
                            d += 1;
                            entered = true;
                        }
                        TokenKind::Punct(']') => d -= 1,
                        _ => {}
                    }
                    i += 1;
                    if entered && d == 0 {
                        break;
                    }
                }
            }
            // …then the gated item itself.
            let mut depth = 0i32;
            while i < tokens.len() {
                match tokens[i].kind {
                    TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => {
                        depth += 1;
                    }
                    TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
                    TokenKind::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    TokenKind::Punct(';') if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
                i += 1;
            }
            continue;
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

/// One file's analysis: findings before pragma suppression, its parsed
/// pragmas, and its symbol-index contribution. Produced per file (the
/// workspace driver fans this out through thermo-exec) and merged by
/// [`finish`], which runs the cross-file checks, applies suppression
/// with stale-pragma accounting, and sorts.
#[derive(Debug)]
pub struct FileAnalysis {
    file: String,
    findings: Vec<Finding>,
    pragmas: Vec<Pragma>,
    symbols: crate::index::FileSymbols,
}

/// Runs every per-file lint pass on one source file. Pragma suppression
/// is *not* applied here — [`finish`] needs the raw findings to decide
/// which pragmas are stale.
pub fn analyze_source(rel_path: &str, source: &str) -> FileAnalysis {
    let scope = Scope::for_path(rel_path);
    let file = rel_path.replace('\\', "/");
    let lexed = lex(source);
    let mut findings = Vec::new();
    let pragmas = parse_pragmas(&lexed.pragmas, &file, &mut findings);
    let tokens = strip_cfg_test(&lexed.tokens);

    let push = |findings: &mut Vec<Finding>,
                line: u32,
                col: u32,
                lint: &str,
                message: String,
                hint: &str| {
        findings.push(Finding::new(&file, line, col, lint, message, hint));
    };

    for (idx, tok) in tokens.iter().enumerate() {
        let Some(ident) = tok.kind.ident() else {
            continue;
        };
        let prev_is_dot = idx > 0 && tokens[idx - 1].kind == TokenKind::Punct('.');
        let next_is_path = tokens.get(idx + 1).map(|t| &t.kind) == Some(&TokenKind::Punct(':'))
            && tokens.get(idx + 2).map(|t| &t.kind) == Some(&TokenKind::Punct(':'));

        // D1: unordered iteration sources in artifact crates.
        if scope.artifact && (ident == "HashMap" || ident == "HashSet") {
            push(
                &mut findings,
                tok.line,
                tok.col,
                "unordered_iteration",
                format!("`{ident}` in an artifact-producing crate: iteration order is nondeterministic per process"),
                "use BTreeMap/BTreeSet so every iteration (and any JSON emitted from it) is ordered",
            );
        }

        // D2: ambient nondeterminism sources.
        if scope.ambient {
            if AMBIENT_IDENTS.contains(&ident) {
                push(
                    &mut findings,
                    tok.line,
                    tok.col,
                    "ambient_nondeterminism",
                    format!("`{ident}` reads wall-clock state: simulation output must be a pure function of the seed"),
                    "use the engine's virtual clock; wall-clock belongs only in thermo-bench reporting paths",
                );
            } else if AMBIENT_CRATE_PATHS.contains(&ident) && next_is_path {
                push(
                    &mut findings,
                    tok.line,
                    tok.col,
                    "ambient_nondeterminism",
                    format!("`{ident}::` path: external entropy sources are banned by the hermetic-build policy"),
                    "use thermo_util::rng seeded streams instead",
                );
            } else if ident == "thread"
                && next_is_path
                && tokens.get(idx + 3).and_then(|t| t.kind.ident()) == Some("current")
            {
                push(
                    &mut findings,
                    tok.line,
                    tok.col,
                    "ambient_nondeterminism",
                    "`thread::current()` exposes scheduling identity: results must not depend on which worker ran".to_string(),
                    "derive per-job identity from JobCtx (job_id/seed), never from the OS thread",
                );
            }
        }

        // D3: RNG draws outside decide.rs, and ad-hoc seed derivation
        // outside the pool internals.
        let is_call = tokens.get(idx + 1).map(|t| &t.kind) == Some(&TokenKind::Punct('('));
        let rng_draw = (prev_is_dot && RNG_DRAW_METHODS.contains(&ident))
            || (RNG_DRAW_FNS.contains(&ident) && is_call);
        if (scope.rng && rng_draw) || (scope.rng_fns && RNG_SEED_FNS.contains(&ident) && is_call) {
            push(
                &mut findings,
                tok.line,
                tok.col,
                "rng_containment",
                format!("RNG draw `{ident}` outside a decide.rs module: draw sites and their historical order are part of the golden contract"),
                "move the draw into the crate's decide.rs (pure helpers, called in historical draw order), or let thermo-exec derive per-job seeds",
            );
        }

        // E2: completion-order merge hazards in executor code — receiving
        // from a channel yields results in arrival order, which varies
        // with steal interleaving; the executor contract is job-id order.
        if scope.exec
            && ((prev_is_dot && RECV_METHODS.contains(&ident)) || (ident == "mpsc" && next_is_path))
        {
            push(
                &mut findings,
                tok.line,
                tok.col,
                "completion_order_merge",
                format!("`{ident}` in executor code merges results in completion order, which varies with steal interleaving"),
                "index results into a slot keyed by stable job id and merge slots in id order",
            );
        }

        // S1: policy crates naming engine mechanism entry points.
        if scope.seam && SEAM_FORBIDDEN.contains(&ident) {
            push(
                &mut findings,
                tok.line,
                tok.col,
                "seam_enforcement",
                format!("policy crate names engine mechanism entry point `{ident}`"),
                "read state via Engine::memory_view and mutate via apply_plan(PolicyPlan) only",
            );
        }
    }

    lint_job_closures(&tokens, &file, &mut findings);
    if scope.exec {
        lint_steal_fns(&tokens, &file, &mut findings);
    }
    lint_component_impls(&tokens, &file, &mut findings);

    // Flow-aware passes run over the token-tree parse of the same
    // (attribute- and test-stripped) token stream.
    let trees = crate::tree::build(&tokens);
    if scope.receipt {
        crate::flow::lint_dropped_receipt(&trees, &file, &mut findings);
    }
    if scope.atomic {
        crate::flow::lint_atomic_ordering(&tokens, &file, &mut findings);
    }
    if scope.taint {
        crate::flow::lint_rng_taint(&trees, &file, scope.is_decide, &mut findings);
    }
    let symbols = crate::index::file_symbols(&trees);

    FileAnalysis {
        file,
        findings,
        pragmas,
        symbols,
    }
}

/// Merges per-file analyses into the final finding list: runs the
/// cross-file checks over the symbol index, applies pragma suppression
/// (a pragma reaches its own line and the following line, so both
/// trailing and stand-alone-comment placement work), flags valid pragmas
/// that suppressed nothing as stale, and sorts.
///
/// Analyses must be supplied in workspace path order — the symbol index
/// and the output ordering both follow it.
pub fn finish(analyses: Vec<FileAnalysis>) -> Vec<Finding> {
    let symbols: Vec<(String, crate::index::FileSymbols)> = analyses
        .iter()
        .map(|a| (a.file.clone(), a.symbols.clone()))
        .collect();
    let mut findings: Vec<Finding> = crate::index::cross_check(&symbols);

    for analysis in analyses {
        // `used` marks pragmas that suppressed at least one finding.
        let mut pragmas: Vec<(Pragma, bool)> =
            analysis.pragmas.into_iter().map(|p| (p, false)).collect();
        for f in analysis.findings {
            let mut suppressed = false;
            if f.lint != "bad_pragma" {
                // Scan every pragma (no short-circuit): a pragma that
                // covers an already-suppressed finding is not stale.
                for (p, used) in pragmas.iter_mut() {
                    if (f.line == p.line || f.line == p.line + 1)
                        && p.lints.contains(&f.lint.as_str())
                    {
                        *used = true;
                        suppressed = true;
                    }
                }
            }
            if !suppressed {
                findings.push(f);
            }
        }
        for (p, used) in pragmas {
            if !used {
                findings.push(Finding::new(
                    &analysis.file,
                    p.line,
                    p.col,
                    "bad_pragma",
                    format!(
                        "stale pragma: allow({}) suppresses no finding on line {} or {}",
                        p.lints.join(", "),
                        p.line,
                        p.line + 1
                    ),
                    "the code it excused is gone — delete the pragma",
                ));
            }
        }
    }

    findings.sort();
    findings
}

/// Lints a set of files given as (workspace-relative path, source) pairs,
/// including the cross-file checks and stale-pragma accounting.
pub fn lint_files(files: &[(String, String)]) -> Vec<Finding> {
    finish(
        files
            .iter()
            .map(|(rel, src)| analyze_source(rel, src))
            .collect(),
    )
}

/// Lints one source file. Cross-file checks see only this file's symbols,
/// so `plan_op_exhaustiveness` fires iff the file defines `PlanOp` without
/// also containing the window/dispatch arms.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Finding> {
    finish(vec![analyze_source(rel_path, source)])
}

/// E1: `unwrap`/`expect`/`panic!`-family calls inside a closure whose
/// parameter list names `JobCtx` (the thermo-exec job shape). A panicking
/// job aborts the whole batch with `ExecError::JobPanicked`, so such calls
/// must be deliberate — i.e. carry an allow-pragma with a reason.
fn lint_job_closures(tokens: &[Token], file: &str, findings: &mut Vec<Finding>) {
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].kind != TokenKind::Punct('|') {
            i += 1;
            continue;
        }
        // Candidate closure parameter list: scan ahead for the closing `|`
        // within a short window, with no statement/block structure between.
        let mut j = i + 1;
        let mut names_jobctx = false;
        let mut closes = None;
        while j < tokens.len() && j - i < 32 {
            match &tokens[j].kind {
                TokenKind::Punct('|') => {
                    closes = Some(j);
                    break;
                }
                TokenKind::Punct('{') | TokenKind::Punct('}') | TokenKind::Punct(';') => break,
                TokenKind::Ident(s) if s == "JobCtx" => names_jobctx = true,
                _ => {}
            }
            j += 1;
        }
        let Some(close) = closes else {
            i += 1;
            continue;
        };
        if !names_jobctx {
            i = close; // re-examine the closing `|` as a potential opener
            continue;
        }
        // Closure body: a braced block, or a single expression ending at
        // the first `,` or `)` at depth zero.
        let body_start = close + 1;
        let mut depth = 0i32;
        let mut k = body_start;
        let braced = tokens.get(k).map(|t| &t.kind) == Some(&TokenKind::Punct('{'));
        while k < tokens.len() {
            match tokens[k].kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                    if depth == 0 {
                        break; // end of enclosing expression
                    }
                    depth -= 1;
                    if braced && depth == 0 {
                        k += 1;
                        break;
                    }
                }
                TokenKind::Punct(',') if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        for t in &tokens[body_start..k.min(tokens.len())] {
            let Some(ident) = t.kind.ident() else {
                continue;
            };
            let panicky = matches!(ident, "unwrap" | "expect")
                || matches!(ident, "panic" | "unreachable" | "todo" | "unimplemented");
            if panicky {
                findings.push(Finding::new(
                    file,
                    t.line,
                    t.col,
                    "panic_in_worker",
                    format!(
                        "`{ident}` inside a JobCtx closure: a panicking job aborts the whole thermo-exec batch"
                    ),
                    "return the error from the job, or annotate with // thermo-lint: allow(panic_in_worker, reason = \"…\")",
                ));
            }
        }
        i = k.max(close + 1);
    }
}

/// E1, steal-path pass: panicky calls inside any executor function whose
/// name contains `steal`. The thief side of the Chase-Lev protocol runs
/// concurrently with the owner and loses claim races by design; an
/// `unwrap`/`expect`/`panic!` there turns a benign retry path into a
/// whole-batch abort on a stack the job-level catch_unwind never sees.
fn lint_steal_fns(tokens: &[Token], file: &str, findings: &mut Vec<Finding>) {
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].kind.ident() != Some("fn") {
            i += 1;
            continue;
        }
        let is_steal_fn = tokens
            .get(i + 1)
            .and_then(|t| t.kind.ident())
            .is_some_and(|name| name.contains("steal"));
        if !is_steal_fn {
            i += 1;
            continue;
        }
        // Scan to the fn's body block, then to its matching close brace.
        let mut j = i + 1;
        while j < tokens.len() && tokens[j].kind != TokenKind::Punct('{') {
            if tokens[j].kind == TokenKind::Punct(';') {
                break; // trait method signature, no body
            }
            j += 1;
        }
        if tokens.get(j).map(|t| &t.kind) != Some(&TokenKind::Punct('{')) {
            i = j.max(i + 1);
            continue;
        }
        let mut depth = 0i32;
        let mut k = j;
        while k < tokens.len() {
            match tokens[k].kind {
                TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        for t in &tokens[j + 1..k.min(tokens.len())] {
            let Some(ident) = t.kind.ident() else {
                continue;
            };
            let panicky = matches!(
                ident,
                "unwrap" | "expect" | "panic" | "unreachable" | "todo" | "unimplemented"
            );
            if panicky {
                findings.push(Finding::new(
                    file,
                    t.line,
                    t.col,
                    "panic_in_worker",
                    format!(
                        "`{ident}` inside steal-path fn: a panic on the thief side aborts the batch outside the job-level catch"
                    ),
                    "losing a claim race is normal — return None/the error, or annotate with // thermo-lint: allow(panic_in_worker, reason = \"…\")",
                ));
            }
        }
        i = k.max(i + 1);
    }
}

/// D4: ambient-ordering sources inside a `Component` impl (any crate —
/// D2's bench allowlist deliberately does not apply here). The scheduler
/// permutes same-`(time, class)` batches under `THERMO_SCHED_FUZZ`, so a
/// tick that consults a wall clock, the environment, thread identity, or
/// external entropy makes the permutation observable and breaks the
/// byte-identity contract the fuzz campaign enforces.
fn lint_component_impls(tokens: &[Token], file: &str, findings: &mut Vec<Finding>) {
    let hint = "Component::tick must be a pure function of component state and virtual \
                time; read config at construction, never inside the event loop";
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].kind.ident() != Some("impl") {
            i += 1;
            continue;
        }
        // Impl header: `impl … Component for … {` with `Component` at
        // angle-depth zero (so `impl<C: Component> Pool<C>` — a generic
        // bound, not an implementation — never matches).
        let mut j = i + 1;
        let mut angle = 0i32;
        let mut saw_component = false;
        let mut is_component_impl = false;
        while j < tokens.len() {
            match &tokens[j].kind {
                TokenKind::Punct('<') => angle += 1,
                TokenKind::Punct('>') => angle -= 1,
                TokenKind::Punct('{') | TokenKind::Punct(';') => break,
                TokenKind::Ident(s) if angle == 0 => {
                    if s == "Component" {
                        saw_component = true;
                    } else if s == "for" && saw_component {
                        is_component_impl = true;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if !is_component_impl || tokens.get(j).map(|t| &t.kind) != Some(&TokenKind::Punct('{')) {
            i = j.max(i + 1);
            continue;
        }
        // The impl body: scan to the matching close brace.
        let mut depth = 0i32;
        let mut k = j;
        while k < tokens.len() {
            match tokens[k].kind {
                TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        for (idx, t) in tokens.iter().enumerate().take(k).skip(j + 1) {
            let Some(ident) = t.kind.ident() else {
                continue;
            };
            let next_is_path = tokens.get(idx + 1).map(|t| &t.kind) == Some(&TokenKind::Punct(':'))
                && tokens.get(idx + 2).map(|t| &t.kind) == Some(&TokenKind::Punct(':'));
            let flagged = if AMBIENT_IDENTS.contains(&ident) {
                Some(format!(
                    "`{ident}` inside a `Component` impl reads wall-clock state"
                ))
            } else if next_is_path && AMBIENT_CRATE_PATHS.contains(&ident) {
                Some(format!(
                    "`{ident}::` inside a `Component` impl pulls external entropy"
                ))
            } else if next_is_path && ident == "env" {
                Some(
                    "`env::` inside a `Component` impl: ambient configuration read mid-tick"
                        .to_string(),
                )
            } else if next_is_path
                && ident == "thread"
                && tokens.get(idx + 3).and_then(|t| t.kind.ident()) == Some("current")
            {
                Some(
                    "`thread::current()` inside a `Component` impl exposes scheduling identity"
                        .to_string(),
                )
            } else {
                None
            };
            if let Some(message) = flagged {
                findings.push(Finding::new(
                    file,
                    t.line,
                    t.col,
                    "sched_purity",
                    message,
                    hint,
                ));
            }
        }
        i = k.max(j + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_derivation() {
        let s = Scope::for_path("crates/thermo-sim/src/engine/mod.rs");
        assert_eq!(s.crate_name, "thermo-sim");
        assert!(s.artifact && s.ambient && s.rng && !s.seam);

        let s = Scope::for_path("crates/thermostat/src/daemon/decide.rs");
        assert!(s.seam && !s.rng, "decide.rs is the legal draw site");

        let s = Scope::for_path("crates/thermo-bench/src/experiments.rs");
        assert!(!s.ambient, "bench wall-clock reporting is allowlisted");

        let s = Scope::for_path("src/lib.rs");
        assert_eq!(s.crate_name, "thermostat-suite");
        assert!(s.artifact);

        let s = Scope::for_path("crates/thermo-scenario/src/phased.rs");
        assert!(s.artifact, "scenario streams reach goldens (D1)");
        assert!(!s.rng, "scenario crate draws freely outside decide.rs");
        let s = Scope::for_path("crates/thermo-scenario/src/decide.rs");
        assert!(!s.rng_fns, "decide.rs is the legal seed-derivation site");
    }

    #[test]
    fn cfg_test_items_are_skipped() {
        let src = "
            use std::collections::BTreeMap;
            #[cfg(test)]
            mod tests {
                use std::collections::HashMap;
                fn f() { let m: HashMap<u32, u32> = HashMap::new(); }
            }
            fn live() {}
        ";
        let findings = lint_source("crates/thermo-sim/src/x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn derive_hash_is_not_a_finding() {
        let src = "#[derive(Hash, PartialEq)]\nstruct S;\n";
        assert!(lint_source("crates/thermo-sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn pragma_without_reason_is_rejected() {
        let src = "// thermo-lint: allow(unordered_iteration)\nuse std::collections::HashMap;\n";
        let findings = lint_source("crates/thermo-sim/src/x.rs", src);
        let lints: Vec<&str> = findings.iter().map(|f| f.lint.as_str()).collect();
        assert!(lints.contains(&"bad_pragma"), "{findings:?}");
        assert!(
            lints.contains(&"unordered_iteration"),
            "invalid pragma must not suppress: {findings:?}"
        );
    }

    #[test]
    fn panic_alias_resolves() {
        assert_eq!(canonical_lint("panic"), Some("panic_in_worker"));
        assert_eq!(canonical_lint("bad_pragma"), None);
        assert_eq!(canonical_lint("nope"), None);
    }
}

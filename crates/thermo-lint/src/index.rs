//! Cross-file symbol index for the X1 `plan_op_exhaustiveness` check.
//!
//! Per file, the index records every `enum` definition (with variant
//! positions) and, for every `fn`, the set of `Path::Segment` pairs its
//! body references. The workspace driver merges per-file symbols in path
//! order and runs [`cross_check`]: every variant of the `PlanOp` enum
//! must be named inside some `local_window` fn (the charge-commute
//! window contract, DESIGN.md §15) *and* inside some `apply_op` /
//! `apply_plan` fn (the engine dispatch). A new variant missing either
//! arm is reported at the variant's own definition site — which is where
//! the author of the new op is looking.

use std::collections::BTreeSet;

use crate::lints::Finding;
use crate::tree::{self, Tree};

/// An enum definition's identity and variant positions.
#[derive(Debug, Clone)]
pub struct EnumSym {
    /// Enum name.
    pub name: String,
    /// `(variant, line, col)` of each variant's name token.
    pub variants: Vec<(String, u32, u32)>,
}

/// One file's contribution to the symbol index.
#[derive(Debug, Clone, Default)]
pub struct FileSymbols {
    /// Enum definitions in the file.
    pub enums: Vec<EnumSym>,
    /// `(fn_name, path_head, path_tail)` for every `Head::Tail` pair
    /// referenced inside a fn body, deduplicated.
    pub fn_refs: BTreeSet<(String, String, String)>,
}

/// Extracts symbols from a file's token trees.
pub fn file_symbols(trees: &[Tree]) -> FileSymbols {
    let mut sym = FileSymbols::default();
    tree::walk_items(
        trees,
        &mut |f| {
            let Some(body) = f.body else { return };
            let mut flat = Vec::new();
            tree::flatten(&body.children, &mut flat);
            for w in flat.windows(4) {
                if let (Some(head), true, true, Some(tail)) = (
                    w[0].ident(),
                    w[1].is_punct(':'),
                    w[2].is_punct(':'),
                    w[3].ident(),
                ) {
                    sym.fn_refs
                        .insert((f.name.to_string(), head.to_string(), tail.to_string()));
                }
            }
        },
        &mut |e| {
            sym.enums.push(EnumSym {
                name: e.name.to_string(),
                variants: e
                    .variants
                    .iter()
                    .map(|(n, l, c)| (n.to_string(), *l, *c))
                    .collect(),
            });
        },
    );
    sym
}

/// The enum whose variants X1 audits, and the fns that must name them.
const AUDITED_ENUM: &str = "PlanOp";
const WINDOW_FNS: [&str; 1] = ["local_window"];
const DISPATCH_FNS: [&str; 2] = ["apply_op", "apply_plan"];

/// Runs the cross-file exhaustiveness check over per-file symbols
/// (workspace-relative path, symbols), in the order given.
pub fn cross_check(files: &[(String, FileSymbols)]) -> Vec<Finding> {
    let mut window_refs: BTreeSet<&str> = BTreeSet::new();
    let mut dispatch_refs: BTreeSet<&str> = BTreeSet::new();
    for (_, sym) in files {
        for (fn_name, head, tail) in &sym.fn_refs {
            if head != AUDITED_ENUM {
                continue;
            }
            if WINDOW_FNS.contains(&fn_name.as_str()) {
                window_refs.insert(tail);
            }
            if DISPATCH_FNS.contains(&fn_name.as_str()) {
                dispatch_refs.insert(tail);
            }
        }
    }
    let mut findings = Vec::new();
    for (file, sym) in files {
        for e in &sym.enums {
            if e.name != AUDITED_ENUM {
                continue;
            }
            for (variant, line, col) in &e.variants {
                if !window_refs.contains(variant.as_str()) {
                    findings.push(Finding::new(
                        file,
                        *line,
                        *col,
                        "plan_op_exhaustiveness",
                        format!(
                            "`{AUDITED_ENUM}::{variant}` has no `local_window()` arm: every op must declare its charge-commute window (or opt out as a barrier)"
                        ),
                        "add the variant to PlanOp::local_window() — Some(window) if the op's charges commute within a VPN window, None to force a flush barrier",
                    ));
                }
                if !dispatch_refs.contains(variant.as_str()) {
                    findings.push(Finding::new(
                        file,
                        *line,
                        *col,
                        "plan_op_exhaustiveness",
                        format!(
                            "`{AUDITED_ENUM}::{variant}` has no `apply_plan` dispatch arm: the engine would not execute this op"
                        ),
                        "add a match arm for the variant in Engine::apply_op (the apply_plan dispatch)",
                    ));
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn sym(src: &str) -> FileSymbols {
        file_symbols(&tree::build(&lex(src).tokens))
    }

    #[test]
    fn refs_and_enums_are_extracted() {
        let s = sym("enum PlanOp { A, B }\nfn local_window(op: &PlanOp) { match op { PlanOp::A => {} PlanOp::B => {} } }");
        assert_eq!(s.enums.len(), 1);
        assert_eq!(s.enums[0].variants.len(), 2);
        assert!(s
            .fn_refs
            .contains(&("local_window".into(), "PlanOp".into(), "A".into())));
    }

    #[test]
    fn missing_arms_are_findings_at_the_variant() {
        let s = sym(
            "enum PlanOp {\n    Covered,\n    Orphan,\n}\nfn local_window(op: &PlanOp) { if let PlanOp::Covered = op {} }\nfn apply_op(op: &PlanOp) { if let PlanOp::Covered = op {} }",
        );
        let findings = cross_check(&[("x.rs".to_string(), s)]);
        assert_eq!(findings.len(), 2, "{findings:#?}");
        for f in &findings {
            assert_eq!(f.lint, "plan_op_exhaustiveness");
            assert_eq!((f.line, f.col), (3, 5), "anchored at `Orphan`");
        }
    }

    #[test]
    fn other_enums_are_ignored() {
        let s = sym("enum Other { A, B }\nfn local_window() {}");
        assert!(cross_check(&[("x.rs".to_string(), s)]).is_empty());
    }
}

//! BadgerTrap substrate: poisoned-PTE fault interception and per-page
//! access counting (paper §3.3 and §4.2).
//!
//! The mechanism, verbatim from the paper: *"When a page is sampled for
//! access counting, Thermostat poisons its PTE by setting a reserved bit
//! (bit 51), and then flushes the PTE from the TLB. The next access to the
//! page will incur a hardware page walk (due to the TLB miss) and then
//! trigger a protection fault (due to the poisoned PTE), which is
//! intercepted by BadgerTrap. BadgerTrap's fault handler unpoisons the page,
//! installs a valid translation in the TLB, and then repoisons the PTE. By
//! counting the number of BadgerTrap faults, we can estimate the number of
//! TLB misses to the page, which we use as a proxy for the number of memory
//! accesses."*
//!
//! The same machinery doubles as the paper's **slow-memory emulator**
//! (§4.2): pages logically placed in slow memory stay poisoned, and each
//! fault charges ~1us — simultaneously the emulated slow-access latency and
//! the §3.5 monitoring mechanism for cold pages.
//!
//! [`TrapUnit`] owns the poison set and the per-page fault counters; the
//! simulation engine calls [`TrapUnit::on_fault`] from its access pipeline
//! whenever a walk resolves a poisoned leaf.

#![warn(missing_docs)]
use std::collections::BTreeMap;
use thermo_mem::{PageSize, Vpn, PAGES_PER_HUGE};
use thermo_vm::{PageTable, Tlb, Vpid};

/// Configuration of the trap unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrapConfig {
    /// Latency of one intercepted fault, in ns. The paper measures ~1us for
    /// its guest-side BadgerTrap handler and deliberately uses that as the
    /// emulated slow-memory latency.
    pub fault_latency_ns: u64,
}

impl Default for TrapConfig {
    fn default() -> Self {
        Self {
            fault_latency_ns: 1_000,
        }
    }
}

/// Aggregate trap statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrapStats {
    /// Total intercepted faults.
    pub faults: u64,
    /// Total handler latency charged, ns.
    pub fault_time_ns: u64,
    /// Pages currently poisoned.
    pub poisoned_pages: u64,
    /// Cumulative poison operations.
    pub poisons: u64,
    /// Cumulative unpoison operations.
    pub unpoisons: u64,
}

/// Per-page fault counter state.
#[derive(Debug, Clone, Copy)]
struct Counter {
    faults: u64,
    size: PageSize,
}

/// The BadgerTrap kernel extension, as a simulation component.
#[derive(Debug, Default)]
pub struct TrapUnit {
    config: TrapConfig,
    counters: BTreeMap<Vpn, Counter>,
    stats: TrapStats,
}

impl TrapUnit {
    /// Creates a trap unit with the given configuration.
    pub fn new(config: TrapConfig) -> Self {
        Self {
            config,
            counters: BTreeMap::new(),
            stats: TrapStats::default(),
        }
    }

    /// The configured per-fault latency, ns.
    pub fn fault_latency_ns(&self) -> u64 {
        self.config.fault_latency_ns
    }

    /// Changes the per-fault latency (used by harnesses exploring the
    /// 400ns–3us slow-memory projection range).
    pub fn set_fault_latency_ns(&mut self, ns: u64) {
        self.config.fault_latency_ns = ns;
    }

    /// Poisons the leaf whose base is `base_vpn` and flushes its
    /// translation so the next access faults. Starts a fresh fault counter.
    ///
    /// `base_vpn` must be the base VPN of a present leaf of size `size`
    /// (4KB pages during §3.2 sampling; whole huge pages for §3.5 cold-page
    /// monitoring).
    ///
    /// # Panics
    ///
    /// Panics if the leaf is unmapped or its size disagrees with `size` —
    /// the policy layer is responsible for poisoning only pages it mapped.
    pub fn poison(
        &mut self,
        pt: &mut PageTable,
        tlb: &mut Tlb,
        vpid: Vpid,
        base_vpn: Vpn,
        size: PageSize,
    ) {
        let found = pt.with_pte_mut(base_vpn, |pte| pte.poison()).is_some();
        assert!(found, "poisoning unmapped page {base_vpn}");
        let mapping = pt.lookup(base_vpn).expect("just poisoned");
        assert_eq!(mapping.size, size, "poison size mismatch at {base_vpn}");
        assert_eq!(
            mapping.base_vpn, base_vpn,
            "poison must target the leaf base"
        );
        tlb.shootdown(base_vpn, size, vpid);
        self.counters.insert(base_vpn, Counter { faults: 0, size });
        self.stats.poisoned_pages = self.counters.len() as u64;
        self.stats.poisons += 1;
    }

    /// Poisons all 512 4KB children of the split huge page at `base_vpn` in
    /// one page-table pass — the bulk counterpart of 512 [`poison`]
    /// calls. Observable state (PTE bits, TLB content, counters,
    /// statistics) is identical to the per-child sequence; only the number
    /// of page-table descents differs.
    ///
    /// [`poison`]: Self::poison
    ///
    /// # Panics
    ///
    /// Panics if any child is unmapped or not a 4KB leaf.
    pub fn poison_children(
        &mut self,
        pt: &mut PageTable,
        tlb: &mut Tlb,
        vpid: Vpid,
        base_vpn: Vpn,
    ) {
        let mut seen = 0u64;
        pt.for_each_leaf_mut(base_vpn, PAGES_PER_HUGE as u64, |vpn, size, pte| {
            assert_eq!(size, PageSize::Small4K, "poison size mismatch at {vpn}");
            pte.poison();
            seen += 1;
        });
        assert_eq!(
            seen, PAGES_PER_HUGE as u64,
            "poisoning unmapped children under {base_vpn}"
        );
        for i in 0..PAGES_PER_HUGE as u64 {
            let vpn = base_vpn.offset(i);
            tlb.shootdown(vpn, PageSize::Small4K, vpid);
            self.counters.insert(
                vpn,
                Counter {
                    faults: 0,
                    size: PageSize::Small4K,
                },
            );
        }
        self.stats.poisoned_pages = self.counters.len() as u64;
        self.stats.poisons += PAGES_PER_HUGE as u64;
    }

    /// Unpoisons all 512 4KB children of the split huge page at `base_vpn`
    /// in one page-table pass, returning their summed fault counts — the
    /// bulk counterpart of 512 [`unpoison`](Self::unpoison) calls, with
    /// identical observable state.
    ///
    /// # Panics
    ///
    /// Panics if any child was not poisoned by this unit.
    pub fn unpoison_children_sum(
        &mut self,
        pt: &mut PageTable,
        tlb: &mut Tlb,
        vpid: Vpid,
        base_vpn: Vpn,
    ) -> u64 {
        pt.for_each_leaf_mut(base_vpn, PAGES_PER_HUGE as u64, |vpn, size, pte| {
            assert_eq!(size, PageSize::Small4K, "unpoison size mismatch at {vpn}");
            pte.unpoison();
        });
        let mut sum = 0;
        for i in 0..PAGES_PER_HUGE as u64 {
            let vpn = base_vpn.offset(i);
            let counter = self
                .counters
                .remove(&vpn)
                .unwrap_or_else(|| panic!("unpoisoning page {vpn} that was never poisoned"));
            sum += counter.faults;
            tlb.shootdown(vpn, counter.size, vpid);
        }
        self.stats.poisoned_pages = self.counters.len() as u64;
        self.stats.unpoisons += PAGES_PER_HUGE as u64;
        sum
    }

    /// Unpoisons the leaf at `base_vpn`, returning the fault count gathered
    /// while it was poisoned.
    ///
    /// # Panics
    ///
    /// Panics if the page is not currently poisoned by this unit.
    pub fn unpoison(
        &mut self,
        pt: &mut PageTable,
        tlb: &mut Tlb,
        vpid: Vpid,
        base_vpn: Vpn,
    ) -> u64 {
        let counter = self
            .counters
            .remove(&base_vpn)
            .unwrap_or_else(|| panic!("unpoisoning page {base_vpn} that was never poisoned"));
        pt.with_pte_mut(base_vpn, |pte| pte.unpoison());
        tlb.shootdown(base_vpn, counter.size, vpid);
        self.stats.poisoned_pages = self.counters.len() as u64;
        self.stats.unpoisons += 1;
        counter.faults
    }

    /// Forgets the counter for `base_vpn` without touching the page table
    /// (used when the page is unmapped or remapped wholesale, e.g. during
    /// migration, and the PTE poison state is rebuilt by the caller).
    pub fn forget(&mut self, base_vpn: Vpn) -> Option<u64> {
        let c = self.counters.remove(&base_vpn);
        self.stats.poisoned_pages = self.counters.len() as u64;
        c.map(|c| c.faults)
    }

    /// Intercepts a fault on the poisoned leaf at `base_vpn`.
    ///
    /// Returns the handler latency to charge. The engine is expected to then
    /// install the translation in the TLB (BadgerTrap's
    /// unpoison-install-repoison dance leaves the PTE poisoned but the TLB
    /// holding a valid entry, so only TLB *misses* are counted).
    ///
    /// Faults on pages this unit did not poison (e.g. after a policy bug)
    /// are still counted in the aggregate statistics so they are visible.
    pub fn on_fault(&mut self, base_vpn: Vpn) -> u64 {
        if let Some(c) = self.counters.get_mut(&base_vpn) {
            c.faults += 1;
        }
        self.stats.faults += 1;
        self.stats.fault_time_ns += self.config.fault_latency_ns;
        self.config.fault_latency_ns
    }

    /// Current fault count of a poisoned page (None if not poisoned).
    pub fn count(&self, base_vpn: Vpn) -> Option<u64> {
        self.counters.get(&base_vpn).map(|c| c.faults)
    }

    /// True if `base_vpn` is poisoned by this unit.
    pub fn is_poisoned(&self, base_vpn: Vpn) -> bool {
        self.counters.contains_key(&base_vpn)
    }

    /// Reads and resets the fault counter of a poisoned page, keeping it
    /// poisoned (the §3.5 cold-page monitor does this every sampling period).
    ///
    /// Returns `None` if the page is not poisoned.
    pub fn take_count(&mut self, base_vpn: Vpn) -> Option<u64> {
        self.counters
            .get_mut(&base_vpn)
            .map(|c| std::mem::take(&mut c.faults))
    }

    /// Iterates over `(base_vpn, faults)` of every poisoned page.
    pub fn iter_counts(&self) -> impl Iterator<Item = (Vpn, u64)> + '_ {
        self.counters.iter().map(|(v, c)| (*v, c.faults))
    }

    /// Number of currently poisoned pages.
    pub fn poisoned_len(&self) -> usize {
        self.counters.len()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> TrapStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermo_mem::Pfn;
    use thermo_vm::TlbOutcome;

    const V: Vpid = Vpid(0);

    fn setup_small() -> (PageTable, Tlb, TrapUnit) {
        let mut pt = PageTable::new();
        pt.map_small(Vpn(7), Pfn(70), true).unwrap();
        (pt, Tlb::default(), TrapUnit::new(TrapConfig::default()))
    }

    #[test]
    fn poison_sets_bit_and_flushes() {
        let (mut pt, mut tlb, mut trap) = setup_small();
        tlb.insert(Vpn(7), Pfn(70), PageSize::Small4K, V);
        trap.poison(&mut pt, &mut tlb, V, Vpn(7), PageSize::Small4K);
        assert!(pt.lookup(Vpn(7)).unwrap().pte.poisoned());
        assert!(matches!(tlb.lookup(Vpn(7), V), TlbOutcome::Miss));
        assert!(trap.is_poisoned(Vpn(7)));
        assert_eq!(trap.count(Vpn(7)), Some(0));
    }

    #[test]
    fn faults_count_and_charge_latency() {
        let (mut pt, mut tlb, mut trap) = setup_small();
        trap.poison(&mut pt, &mut tlb, V, Vpn(7), PageSize::Small4K);
        assert_eq!(trap.on_fault(Vpn(7)), 1_000);
        assert_eq!(trap.on_fault(Vpn(7)), 1_000);
        assert_eq!(trap.count(Vpn(7)), Some(2));
        let s = trap.stats();
        assert_eq!(s.faults, 2);
        assert_eq!(s.fault_time_ns, 2_000);
    }

    #[test]
    fn unpoison_returns_count_and_clears_bit() {
        let (mut pt, mut tlb, mut trap) = setup_small();
        trap.poison(&mut pt, &mut tlb, V, Vpn(7), PageSize::Small4K);
        trap.on_fault(Vpn(7));
        let n = trap.unpoison(&mut pt, &mut tlb, V, Vpn(7));
        assert_eq!(n, 1);
        assert!(!pt.lookup(Vpn(7)).unwrap().pte.poisoned());
        assert!(!trap.is_poisoned(Vpn(7)));
        assert_eq!(trap.stats().poisoned_pages, 0);
    }

    #[test]
    fn take_count_resets_but_keeps_poisoned() {
        let (mut pt, mut tlb, mut trap) = setup_small();
        trap.poison(&mut pt, &mut tlb, V, Vpn(7), PageSize::Small4K);
        trap.on_fault(Vpn(7));
        assert_eq!(trap.take_count(Vpn(7)), Some(1));
        assert_eq!(trap.count(Vpn(7)), Some(0));
        assert!(pt.lookup(Vpn(7)).unwrap().pte.poisoned());
    }

    #[test]
    fn huge_page_poisoning() {
        let mut pt = PageTable::new();
        pt.map_huge(Vpn(512), Pfn(512), true).unwrap();
        let mut tlb = Tlb::default();
        let mut trap = TrapUnit::default();
        trap.poison(&mut pt, &mut tlb, V, Vpn(512), PageSize::Huge2M);
        assert!(pt.lookup(Vpn(700)).unwrap().pte.poisoned());
        trap.on_fault(Vpn(512));
        assert_eq!(trap.unpoison(&mut pt, &mut tlb, V, Vpn(512)), 1);
        assert!(!pt.lookup(Vpn(700)).unwrap().pte.poisoned());
    }

    #[test]
    fn fault_latency_configurable() {
        let mut trap = TrapUnit::new(TrapConfig {
            fault_latency_ns: 400,
        });
        assert_eq!(trap.fault_latency_ns(), 400);
        trap.set_fault_latency_ns(3_000);
        assert_eq!(trap.on_fault(Vpn(1)), 3_000);
    }

    #[test]
    fn untracked_fault_counts_in_aggregate_only() {
        let mut trap = TrapUnit::default();
        trap.on_fault(Vpn(42));
        assert_eq!(trap.stats().faults, 1);
        assert_eq!(trap.count(Vpn(42)), None);
    }

    #[test]
    fn forget_drops_counter_without_pte_access() {
        let (mut pt, mut tlb, mut trap) = setup_small();
        trap.poison(&mut pt, &mut tlb, V, Vpn(7), PageSize::Small4K);
        trap.on_fault(Vpn(7));
        assert_eq!(trap.forget(Vpn(7)), Some(1));
        assert_eq!(trap.forget(Vpn(7)), None);
        // PTE remains poisoned; caller owns cleanup.
        assert!(pt.lookup(Vpn(7)).unwrap().pte.poisoned());
    }

    #[test]
    #[should_panic(expected = "unmapped")]
    fn poison_unmapped_panics() {
        let mut pt = PageTable::new();
        let mut tlb = Tlb::default();
        let mut trap = TrapUnit::default();
        trap.poison(&mut pt, &mut tlb, V, Vpn(1), PageSize::Small4K);
    }

    #[test]
    #[should_panic(expected = "never poisoned")]
    fn unpoison_unknown_panics() {
        let (mut pt, mut tlb, mut trap) = setup_small();
        trap.unpoison(&mut pt, &mut tlb, V, Vpn(7));
    }

    #[test]
    fn bulk_children_ops_match_per_child_sequence() {
        use thermo_mem::PAGES_PER_HUGE;
        let build = || {
            let mut pt = PageTable::new();
            pt.map_huge(Vpn(512), Pfn(1024), true).unwrap();
            pt.split_huge(Vpn(512)).unwrap();
            (pt, Tlb::default(), TrapUnit::default())
        };
        let (mut pt_a, mut tlb_a, mut trap_a) = build();
        let (mut pt_b, mut tlb_b, mut trap_b) = build();

        trap_a.poison_children(&mut pt_a, &mut tlb_a, V, Vpn(512));
        for i in 0..PAGES_PER_HUGE as u64 {
            trap_b.poison(&mut pt_b, &mut tlb_b, V, Vpn(512 + i), PageSize::Small4K);
        }
        assert_eq!(trap_a.stats(), trap_b.stats());
        for i in 0..PAGES_PER_HUGE as u64 {
            assert_eq!(pt_a.lookup(Vpn(512 + i)), pt_b.lookup(Vpn(512 + i)));
        }

        trap_a.on_fault(Vpn(513));
        trap_b.on_fault(Vpn(513));
        trap_a.on_fault(Vpn(900));
        trap_b.on_fault(Vpn(900));

        let sum_a = trap_a.unpoison_children_sum(&mut pt_a, &mut tlb_a, V, Vpn(512));
        let mut sum_b = 0;
        for i in 0..PAGES_PER_HUGE as u64 {
            sum_b += trap_b.unpoison(&mut pt_b, &mut tlb_b, V, Vpn(512 + i));
        }
        assert_eq!(sum_a, 2);
        assert_eq!(sum_a, sum_b);
        assert_eq!(trap_a.stats(), trap_b.stats());
        for i in 0..PAGES_PER_HUGE as u64 {
            assert_eq!(pt_a.lookup(Vpn(512 + i)), pt_b.lookup(Vpn(512 + i)));
        }
    }

    #[test]
    #[should_panic(expected = "unmapped children")]
    fn bulk_poison_unmapped_children_panics() {
        let mut pt = PageTable::new();
        pt.map_small(Vpn(512), Pfn(1), true).unwrap(); // only 1 of 512
        let mut tlb = Tlb::default();
        let mut trap = TrapUnit::default();
        trap.poison_children(&mut pt, &mut tlb, V, Vpn(512));
    }

    #[test]
    fn iter_counts_covers_all() {
        let mut pt = PageTable::new();
        pt.map_small(Vpn(1), Pfn(1), true).unwrap();
        pt.map_small(Vpn(2), Pfn(2), true).unwrap();
        let mut tlb = Tlb::default();
        let mut trap = TrapUnit::default();
        trap.poison(&mut pt, &mut tlb, V, Vpn(1), PageSize::Small4K);
        trap.poison(&mut pt, &mut tlb, V, Vpn(2), PageSize::Small4K);
        trap.on_fault(Vpn(2));
        let mut counts: Vec<_> = trap.iter_counts().collect();
        counts.sort();
        assert_eq!(counts, vec![(Vpn(1), 0), (Vpn(2), 1)]);
        assert_eq!(trap.poisoned_len(), 2);
    }
}

thermo_util::json_struct!(TrapConfig { fault_latency_ns });

//! Property test: BadgerTrap counters are conserved — every fault is
//! attributed to exactly one poisoned page and surfaces exactly once
//! through `unpoison`/`take_count`, under arbitrary interleavings.

use std::collections::HashMap;
use thermo_mem::{PageSize, Pfn, Vpn};
use thermo_trap::{TrapConfig, TrapUnit};
use thermo_util::forall;
use thermo_util::proptest_lite::{range, vec_of, weighted, Strategy};
use thermo_vm::{PageTable, Tlb, Vpid};

const N_PAGES: u64 = 16;

#[derive(Debug, Clone)]
enum Op {
    Poison(u8),
    Unpoison(u8),
    Fault(u8),
    Take(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    weighted(vec![
        (1, range(0u8..N_PAGES as u8).prop_map(Op::Poison).boxed()),
        (1, range(0u8..N_PAGES as u8).prop_map(Op::Unpoison).boxed()),
        (3, range(0u8..N_PAGES as u8).prop_map(Op::Fault).boxed()),
        (1, range(0u8..N_PAGES as u8).prop_map(Op::Take).boxed()),
    ])
}

#[test]
fn fault_counts_conserved() {
    forall!(cases = 64, (ops in vec_of(op_strategy(), 1..300)) => {
        let mut pt = PageTable::new();
        let mut tlb = Tlb::default();
        let mut trap = TrapUnit::new(TrapConfig::default());
        let vpid = Vpid(0);
        for i in 0..N_PAGES {
            pt.map_small(Vpn(i), Pfn(100 + i), true).unwrap();
        }

        // Shadow model.
        let mut poisoned = [false; N_PAGES as usize];
        let mut pending: HashMap<u8, u64> = HashMap::new(); // uncollected faults
        let mut collected = 0u64;
        let mut faults_on_poisoned = 0u64;

        for op in ops {
            match op {
                Op::Poison(p) => {
                    if !poisoned[p as usize] {
                        trap.poison(&mut pt, &mut tlb, vpid, Vpn(p as u64), PageSize::Small4K);
                        poisoned[p as usize] = true;
                        pending.insert(p, 0);
                    }
                }
                Op::Unpoison(p) => {
                    if poisoned[p as usize] {
                        let got = trap.unpoison(&mut pt, &mut tlb, vpid, Vpn(p as u64));
                        let want = pending.remove(&p).unwrap_or(0);
                        assert_eq!(got, want, "unpoison must return pending faults");
                        collected += got;
                        poisoned[p as usize] = false;
                        // PTE poison bit must be clear again.
                        assert!(!pt.lookup(Vpn(p as u64)).unwrap().pte.poisoned());
                    }
                }
                Op::Fault(p) => {
                    // The engine only faults on poisoned pages; mirror that.
                    if poisoned[p as usize] {
                        let lat = trap.on_fault(Vpn(p as u64));
                        assert_eq!(lat, 1_000);
                        *pending.get_mut(&p).expect("tracked") += 1;
                        faults_on_poisoned += 1;
                    }
                }
                Op::Take(p) => {
                    if poisoned[p as usize] {
                        let got = trap.take_count(Vpn(p as u64)).expect("poisoned page");
                        let want = std::mem::take(pending.get_mut(&p).expect("tracked"));
                        assert_eq!(got, want, "take_count must drain pending faults");
                        collected += got;
                    } else {
                        assert_eq!(trap.take_count(Vpn(p as u64)), None);
                    }
                }
            }
            // Conservation: collected + still-pending == all faults.
            let pending_total: u64 = pending.values().sum();
            assert_eq!(collected + pending_total, faults_on_poisoned);
            // Aggregate stats agree.
            assert_eq!(trap.stats().faults, faults_on_poisoned);
            assert_eq!(trap.poisoned_len(), pending.len());
        }
    });
}

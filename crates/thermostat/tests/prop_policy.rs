//! Property tests for Thermostat's pure policy logic: the §3.2 estimator,
//! §3.4 classifier and §3.5 correction planner.

use thermo_mem::Vpn;
use thermo_util::forall;
use thermo_util::proptest_lite::{any, frange, range, vec_of};
use thermostat::{classify, extrapolate, plan_correction, Candidate, ColdObservation};

/// The classifier's cold set never exceeds the budget, is maximal on
/// the sorted order, and partitions the input.
#[test]
fn classifier_respects_budget_and_partitions() {
    forall!(cases = 128,
        (rates in vec_of(frange(0.0f64..5_000.0), 0..200)),
        (budget in frange(0.0f64..50_000.0)) => {
        let candidates: Vec<Candidate> = rates
            .iter()
            .enumerate()
            .map(|(i, r)| Candidate { vpn: Vpn((i as u64) * 512), rate_per_sec: *r })
            .collect();
        let n = candidates.len();
        let c = classify(candidates, budget);
        // Partition.
        assert_eq!(c.cold.len() + c.hot.len(), n);
        // Budget respected.
        assert!(c.cold_rate <= budget + 1e-9);
        // Cold set is the coldest prefix: every cold rate <= every hot rate.
        let max_cold = c.cold.iter().map(|x| x.rate_per_sec).fold(0.0, f64::max);
        let min_hot = c.hot.iter().map(|x| x.rate_per_sec).fold(f64::INFINITY, f64::min);
        assert!(c.cold.is_empty() || c.hot.is_empty() || max_cold <= min_hot + 1e-9);
        // Greedy maximality: the cheapest hot page would break the budget.
        if let Some(h) = c.hot.iter().map(|x| x.rate_per_sec).fold(None::<f64>, |m, r| {
            Some(m.map_or(r, |m| m.min(r)))
        }) {
            assert!(c.cold_rate + h > budget - 1e-9);
        }
    });
}

/// The correction planner always brings the kept rate to (at most) the
/// threshold, promotes hottest-first, and never promotes when already
/// under the threshold.
#[test]
fn correction_reaches_threshold_promoting_hottest_first() {
    forall!(cases = 128,
        (counts in vec_of(range(0u64..100_000), 0..100)),
        (threshold in frange(0.0f64..200_000.0)),
        (period_secs in range(1u64..60)) => {
        let period_ns = period_secs * 1_000_000_000;
        let obs: Vec<ColdObservation> = counts
            .iter()
            .enumerate()
            .map(|(i, c)| ColdObservation { vpn: Vpn(i as u64 * 512), count: *c })
            .collect();
        let total: u64 = counts.iter().sum();
        let rate_before = total as f64 / period_secs as f64;
        let plan = plan_correction(obs.clone(), threshold, period_ns);
        assert!((plan.rate_before - rate_before).abs() < 1e-6);
        assert!(plan.rate_after <= threshold.max(0.0) + 1e-6);
        if rate_before <= threshold {
            assert!(plan.promote.is_empty(), "no promotion needed under threshold");
        }
        // Hottest-first: promoted pages' counts dominate kept pages'.
        let promoted: std::collections::HashSet<Vpn> = plan.promote.iter().copied().collect();
        let min_promoted = obs
            .iter()
            .filter(|o| promoted.contains(&o.vpn))
            .map(|o| o.count)
            .min();
        let max_kept = obs
            .iter()
            .filter(|o| !promoted.contains(&o.vpn))
            .map(|o| o.count)
            .max();
        if let (Some(mp), Some(mk)) = (min_promoted, max_kept) {
            assert!(mp >= mk, "promoted {mp} < kept {mk}");
        }
    });
}

/// The estimator is scale-correct: doubling faults doubles the rate,
/// doubling the window halves it, and the extrapolation multiplier is
/// exactly accessed/sampled.
#[test]
fn estimator_scaling_laws() {
    forall!(cases = 128,
        (faults in range(0u64..10_000)),
        (sampled in range(1u32..512)),
        (accessed_extra in range(0u32..512)),
        (window_ms in range(1u64..100_000)) => {
        let accessed = sampled + accessed_extra.min(512 - sampled);
        let w = window_ms * 1_000_000;
        let e1 = extrapolate(faults, sampled, accessed, w);
        let e2 = extrapolate(faults * 2, sampled, accessed, w);
        assert!((e2.rate_per_sec - 2.0 * e1.rate_per_sec).abs() < 1e-6 * (1.0 + e1.rate_per_sec));
        let e3 = extrapolate(faults, sampled, accessed, w * 2);
        assert!((e3.rate_per_sec - e1.rate_per_sec / 2.0).abs() < 1e-6 * (1.0 + e1.rate_per_sec));
        // Multiplier check against the direct formula.
        let direct = faults as f64 / sampled as f64 * accessed as f64 / (w as f64 / 1e9);
        assert!((e1.rate_per_sec - direct).abs() < 1e-9 * (1.0 + direct));
    });
}

/// Classification is deterministic and order-insensitive: shuffling the
/// candidate list never changes the outcome sets.
#[test]
fn classifier_order_insensitive() {
    forall!(cases = 128,
        (rates in vec_of(frange(0.0f64..1_000.0), 1..60)),
        (budget in frange(0.0f64..10_000.0)),
        (seed in any::<u64>()) => {
        use thermo_util::rng::SeedableRng;
        use thermo_util::rng::SliceRandom;
        let mk = |order: &[Candidate]| {
            let c = classify(order.to_vec(), budget);
            let mut cold: Vec<u64> = c.cold.iter().map(|x| x.vpn.0).collect();
            cold.sort();
            cold
        };
        let original: Vec<Candidate> = rates
            .iter()
            .enumerate()
            .map(|(i, r)| Candidate { vpn: Vpn(i as u64 * 512), rate_per_sec: *r })
            .collect();
        let mut shuffled = original.clone();
        shuffled.shuffle(&mut thermo_util::rng::SmallRng::seed_from_u64(seed));
        assert_eq!(mk(&original), mk(&shuffled));
    });
}

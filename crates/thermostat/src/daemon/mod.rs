//! The Thermostat policy daemon — the full §3 mechanism as a
//! [`PolicyHook`].
//!
//! Each sampling period (30s in the paper) runs the three scans of
//! Figure 4, spaced a third of a period apart:
//!
//! 1. **Split** — select a random 5% of fast-tier huge pages, split them
//!    into 4KB PTEs, and clear the children's Accessed bits. (Also
//!    consolidates pages demoted in the previous period: collapse them in
//!    slow memory and switch their monitoring to the huge PTE.)
//! 2. **Poison** — read the children's Accessed bits (the cheap hardware
//!    prefilter), then poison up to K = 50 of the accessed children for
//!    BadgerTrap fault counting.
//! 3. **Classify** — collect fault counts, extrapolate per-huge-page
//!    access rates (§3.2), run the §3.5 correction over the existing cold
//!    set, then place the coldest sampled pages in slow memory up to the
//!    §3.4 rate budget; hot pages are collapsed back to 2MB.
//!
//! Cold pages remain poisoned while in slow memory: under the paper's
//! evaluation methodology the ~1us fault **is** the emulated slow-memory
//! access, and its count drives the correction mechanism.
//!
//! # Structure: mechanism vs. policy
//!
//! Every phase is written against the engine's phase-structured seam. A
//! phase (1) takes a read-only [`MemoryView`](thermo_sim::MemoryView)
//! snapshot — built off the app
//! thread by `THERMO_SCAN_JOBS` shard workers when configured — (2) makes
//! all its decisions on that snapshot with the pure helpers in [`decide`]
//! (the only place the daemon's RNG is consulted), and (3) hands the
//! engine a [`PolicyPlan`] whose receipt drives the bookkeeping. The
//! daemon itself never touches page tables, the TLB, or the trap unit
//! directly, and the plan's virtual-time charges equal what the
//! historically fused scan-and-mutate code paid, so artifacts are
//! byte-identical across the refactor and across any worker count.

mod decide;
#[cfg(test)]
mod tests;

use crate::classify::{classify, Candidate};
use crate::config::{MonitorMode, ThermostatConfig};
use crate::correction::{plan_correction, ColdObservation};
use crate::estimate::extrapolate;
use std::collections::{BTreeMap, BTreeSet};
use thermo_mem::{PageSize, Tier, Vpn, PAGES_PER_HUGE};
use thermo_sim::{Engine, FootprintBreakdown, OpOutcome, PlanOp, PolicyHook, PolicyPlan};
use thermo_util::rng::SeedableRng;
use thermo_util::rng::SmallRng;

/// Which of Figure 4's three scans runs next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Split,
    Poison,
    Classify,
}

/// A huge page under monitoring this period.
#[derive(Debug, Clone)]
struct SampledPage {
    vpn: Vpn,
    /// Children whose A bit was set in the prefilter.
    accessed_children: u32,
    /// Poisoned children (PoisonSampling mode).
    monitored: Vec<Vpn>,
    /// True-count snapshot at poison time (hardware-assisted modes).
    snapshot: Vec<(Vpn, u64)>,
    /// Full accessed-children set (kept only when split placement is on).
    accessed_set: Vec<Vpn>,
}

/// Bookkeeping for a page currently placed in slow memory.
#[derive(Debug, Clone, Copy)]
struct ColdPage {
    /// Still split into 4KB PTEs (freshly demoted this period).
    split: bool,
}

/// One record per completed sampling period (drives Figures 5–10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeriodRecord {
    /// Virtual time at the end of the period's classify scan.
    pub at_ns: u64,
    /// Footprint breakdown at that time.
    pub breakdown: FootprintBreakdown,
    /// Estimated aggregate rate of the pages demoted this period, acc/s.
    pub demoted_rate: f64,
    /// Observed aggregate slow-memory access rate over the period, acc/s.
    pub slow_rate_observed: f64,
    /// Pages demoted this period.
    pub demoted: u32,
    /// Pages promoted by correction this period.
    pub promoted: u32,
    /// Aggregate cold-set rate seen by the §3.5 correction before it acted,
    /// acc/s (from the per-page fault counters).
    pub correction_rate_before: f64,
    /// Aggregate rate of the cold pages the correction kept, acc/s.
    pub correction_rate_after: f64,
}

/// Aggregate daemon statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DaemonStats {
    /// Completed sampling periods.
    pub periods: u64,
    /// Huge pages sampled in total.
    pub pages_sampled: u64,
    /// Huge pages demoted to slow memory.
    pub pages_demoted: u64,
    /// Huge pages promoted back by correction.
    pub pages_promoted: u64,
    /// Demotions skipped because the slow tier was full.
    pub demote_oom: u64,
    /// Promotions skipped because the fast tier was full.
    pub promote_oom: u64,
    /// Hot huge pages placed partially (split placement, §6 extension).
    pub pages_split_placed: u64,
    /// Cold 4KB children placed in slow memory by split placement.
    pub split_children_demoted: u64,
}

/// The Thermostat daemon.
#[derive(Debug)]
pub struct Daemon {
    config: ThermostatConfig,
    rng: SmallRng,
    phase: Phase,
    next_due_ns: u64,
    sample: Vec<SampledPage>,
    sampled_fraction_actual: f64,
    cold: BTreeMap<Vpn, ColdPage>,
    /// Fault counts captured during consolidation, credited to the next
    /// correction pass.
    carry_counts: BTreeMap<Vpn, u64>,
    /// §6 split placement: cold 4KB child -> parent huge-page base.
    partial_children: BTreeMap<Vpn, Vpn>,
    /// Huge pages already sampled in the current coverage epoch. The paper
    /// picks a *different* random sample each period "so that eventually
    /// all pages are sampled"; pages outside this set get priority, and the
    /// epoch resets once every candidate has been visited. Ordered so no
    /// iteration-order nondeterminism can ever leak into sampling.
    sampled_epoch: BTreeSet<Vpn>,
    history: Vec<PeriodRecord>,
    stats: DaemonStats,
    /// Snapshot shard workers (`THERMO_SCAN_JOBS`); purely a host-side
    /// execution knob, deliberately *not* part of the serialized
    /// [`ThermostatConfig`] so artifacts cannot depend on it.
    scan_workers: usize,
    last_slow_faults: u64,
    /// Fabric mode: demotions in flight on the migration fabric, as
    /// `(vpn, txn_id)`. Empty unless `SimConfig::fabric.enabled`.
    pending_demotes: Vec<(Vpn, u64)>,
    /// Fabric mode: demotions committed since the last period record.
    fabric_demoted: u32,
}

impl Daemon {
    /// Creates a daemon; the first scan fires one scan interval after t=0.
    /// Snapshot scans use `THERMO_SCAN_JOBS` shard workers (inline when
    /// unset).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid
    /// (see [`ThermostatConfig::validate`]).
    pub fn new(config: ThermostatConfig) -> Self {
        Self::with_scan_workers(config, thermo_exec::scan_jobs_from_env())
    }

    /// [`Daemon::new`] with an explicit snapshot worker count instead of
    /// the `THERMO_SCAN_JOBS` environment default.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid
    /// (see [`ThermostatConfig::validate`]).
    pub fn with_scan_workers(config: ThermostatConfig, scan_workers: usize) -> Self {
        config.validate();
        Self {
            rng: SmallRng::seed_from_u64(config.seed),
            phase: Phase::Split,
            next_due_ns: config.scan_interval_ns(),
            sample: Vec::new(),
            sampled_fraction_actual: config.sample_fraction,
            cold: BTreeMap::new(),
            carry_counts: BTreeMap::new(),
            partial_children: BTreeMap::new(),
            sampled_epoch: BTreeSet::new(),
            history: Vec::new(),
            stats: DaemonStats::default(),
            scan_workers,
            last_slow_faults: 0,
            pending_demotes: Vec::new(),
            fabric_demoted: 0,
            config,
        }
    }

    /// Current configuration.
    pub fn config(&self) -> &ThermostatConfig {
        &self.config
    }

    /// Changes the tolerable slowdown at runtime (the paper's cgroup knob,
    /// §5: "Thermostat's slowdown threshold can be changed at runtime").
    pub fn set_tolerable_slowdown_pct(&mut self, pct: f64) {
        self.config.tolerable_slowdown_pct = pct;
        self.config.validate();
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> DaemonStats {
        self.stats
    }

    /// Per-period records (Figures 5–10 time series).
    pub fn history(&self) -> &[PeriodRecord] {
        &self.history
    }

    /// Number of huge pages currently placed in slow memory.
    pub fn cold_pages(&self) -> usize {
        self.cold.len()
    }

    /// Number of 4KB children currently split-placed in slow memory
    /// (always 0 unless the §6 split-placement extension is enabled).
    pub fn partial_children(&self) -> usize {
        self.partial_children.len()
    }

    // ------------------------------------------------------------------
    // Scan 1: consolidate + select + split.
    // ------------------------------------------------------------------
    fn split_phase(&mut self, engine: &mut Engine) {
        if engine.config().fabric.enabled {
            // Collect receipts for demotions begun on the fabric last
            // period before consolidation looks at the cold set.
            self.commit_pending_demotes(engine);
        }
        self.consolidate_previous_cold(engine);

        // Candidate set from a snapshot of every VMA: huge pages currently
        // resident in fast memory. Pages with an in-flight fabric demotion
        // are excluded — re-splitting them would invalidate the copy.
        let ranges = engine.vma_ranges();
        let view = engine.memory_view(&ranges, self.scan_workers);
        let candidates: Vec<Vpn> = view
            .pages()
            .iter()
            .filter(|p| p.size == PageSize::Huge2M && p.tier == Tier::Fast)
            .map(|p| p.base_vpn)
            .filter(|v| !self.pending_demotes.iter().any(|&(pv, _)| pv == *v))
            .collect();
        if candidates.is_empty() {
            self.sample.clear();
            self.sampled_fraction_actual = self.config.sample_fraction;
            return;
        }
        let (selected, fraction) = decide::select_sample(
            &mut self.rng,
            candidates,
            self.config.sample_fraction,
            &mut self.sampled_epoch,
        );
        self.sampled_fraction_actual = fraction;

        let mut plan = PolicyPlan::new();
        for &vpn in &selected {
            plan.push(PlanOp::SplitSample { vpn });
        }
        engine.apply_plan(&plan);
        self.sample = selected
            .into_iter()
            .map(|vpn| SampledPage {
                vpn,
                accessed_children: 0,
                monitored: Vec::new(),
                snapshot: Vec::new(),
                accessed_set: Vec::new(),
            })
            .collect();
        self.stats.pages_sampled += self.sample.len() as u64;
    }

    /// Fabric mode: try to commit every in-flight demotion. A completed
    /// copy remaps the page to slow memory — it is then poisoned (the
    /// fault-emulated methodology keeps charging it) and enters the cold
    /// set unsplit, already consolidated, so the §3.5 correction monitors
    /// it from the next period on. A still-copying transaction stays
    /// pending; an aborted one (write-retries exhausted, structural
    /// invalidation, or slow-tier OOM at commit) is dropped — the page
    /// never left fast memory and will be re-sampled eventually.
    fn commit_pending_demotes(&mut self, engine: &mut Engine) {
        if self.pending_demotes.is_empty() {
            return;
        }
        let mut plan = PolicyPlan::new();
        for &(_, id) in &self.pending_demotes {
            plan.push(PlanOp::CommitMigrate { txn: id });
        }
        let receipt = engine.apply_plan(&plan);
        let mut follow = PolicyPlan::new();
        let mut still = Vec::new();
        for ((vpn, id), oc) in std::mem::take(&mut self.pending_demotes)
            .into_iter()
            .zip(receipt.outcomes())
        {
            match oc {
                OpOutcome::Done => {
                    follow.push(PlanOp::Poison {
                        vpn,
                        size: PageSize::Huge2M,
                    });
                    self.cold.insert(vpn, ColdPage { split: false });
                    self.fabric_demoted += 1;
                }
                OpOutcome::Pending => still.push((vpn, id)),
                OpOutcome::DemoteOom => self.stats.demote_oom += 1,
                OpOutcome::AbortedTxn => {}
                _ => unreachable!("CommitMigrate outcome"),
            }
        }
        self.pending_demotes = still;
        if !follow.is_empty() {
            let receipt = engine.apply_plan(&follow);
            debug_assert!(
                receipt.outcomes().iter().all(|o| *o == OpOutcome::Done),
                "poison follow-ups complete synchronously"
            );
        }
    }

    /// Collapse pages demoted last period: they were migrated into
    /// contiguous huge frames in slow memory, so the 512 child PTEs fold
    /// back into one huge PTE whose poisoning continues the §3.5 monitor.
    /// The drained child fault counts are carried into the next correction
    /// pass.
    fn consolidate_previous_cold(&mut self, engine: &mut Engine) {
        let split_pages: Vec<Vpn> = self
            .cold
            .iter()
            .filter(|(_, c)| c.split)
            .map(|(v, _)| *v)
            .collect();
        let mut plan = PolicyPlan::new();
        for &vpn in &split_pages {
            plan.push(PlanOp::ConsolidateCold { vpn });
        }
        let receipt = engine.apply_plan(&plan);
        for (outcome, &vpn) in receipt.outcomes().iter().zip(&split_pages) {
            let OpOutcome::Faults(sum) = outcome else {
                unreachable!("ConsolidateCold returns Faults");
            };
            *self.carry_counts.entry(vpn).or_insert(0) += sum;
            self.cold.get_mut(&vpn).expect("tracked cold page").split = false;
        }
    }

    // ------------------------------------------------------------------
    // Scan 2: prefilter + poison.
    // ------------------------------------------------------------------
    fn poison_phase(&mut self, engine: &mut Engine) {
        let mode = self.config.monitor_mode;
        let ranges: Vec<(Vpn, u64)> = self
            .sample
            .iter()
            .map(|sp| (sp.vpn, PAGES_PER_HUGE as u64))
            .collect();
        let view = engine.memory_view(&ranges, self.scan_workers);
        let mut plan = PolicyPlan::new();
        for (i, sp) in self.sample.iter_mut().enumerate() {
            let pages = view.range_pages(i);
            // The prefilter: children the application touched since the
            // split scan cleared their A bits.
            let accessed: Vec<Vpn> = pages
                .iter()
                .filter(|p| p.size == PageSize::Small4K && p.accessed)
                .map(|p| p.base_vpn)
                .collect();
            sp.accessed_children = accessed.len() as u32;
            if self.config.split_placement_enabled {
                sp.accessed_set = accessed.clone();
            }
            // Clear exactly the accessed leaves (the mutation half of the
            // historical fused scan; identical shootdown charges).
            plan.push(PlanOp::ClearAccessed {
                pages: pages
                    .iter()
                    .filter(|p| p.accessed)
                    .map(|p| (p.base_vpn, p.size))
                    .collect(),
            });
            match mode {
                MonitorMode::PoisonSampling => {
                    let monitored = decide::choose_monitored(
                        &mut self.rng,
                        accessed,
                        self.config.max_poison_per_page,
                    );
                    for &child in &monitored {
                        plan.push(PlanOp::Poison {
                            vpn: child,
                            size: PageSize::Small4K,
                        });
                    }
                    sp.monitored = monitored;
                }
                MonitorMode::IdealCmBit | MonitorMode::PebsSampling { .. } => {
                    assert!(
                        engine.config().track_true_access,
                        "hardware-assisted monitor modes need track_true_access"
                    );
                    let counts = engine.true_access_counts();
                    sp.snapshot = (0..PAGES_PER_HUGE as u64)
                        .map(|i| {
                            let v = sp.vpn.offset(i);
                            (v, counts.get(&v).copied().unwrap_or(0))
                        })
                        .collect();
                }
            }
        }
        engine.apply_plan(&plan);
    }

    // ------------------------------------------------------------------
    // Scan 3: estimate + correct + classify + migrate.
    // ------------------------------------------------------------------
    fn classify_phase(&mut self, engine: &mut Engine) {
        let window = self.config.scan_interval_ns();
        let threshold = self.config.target_slow_access_rate();
        let sample = std::mem::take(&mut self.sample);

        // 1. Access-rate estimates for the sampled pages: drain the
        //    monitored children's fault counters and extrapolate (§3.2).
        let mut measure = PolicyPlan::new();
        if matches!(self.config.monitor_mode, MonitorMode::PoisonSampling) {
            for sp in &sample {
                measure.push(PlanOp::UnpoisonSum {
                    vpns: sp.monitored.clone(),
                });
            }
        }
        let measured = engine.apply_plan(&measure);
        let mut estimates: Vec<Candidate> = Vec::with_capacity(sample.len());
        for (i, sp) in sample.iter().enumerate() {
            let rate = match self.config.monitor_mode {
                MonitorMode::PoisonSampling => {
                    let OpOutcome::Faults(faults) = measured.outcomes()[i] else {
                        unreachable!("UnpoisonSum returns Faults");
                    };
                    extrapolate(
                        faults,
                        sp.monitored.len() as u32,
                        sp.accessed_children,
                        window,
                    )
                    .rate_per_sec
                }
                MonitorMode::IdealCmBit => {
                    let counts = engine.true_access_counts();
                    let delta: u64 = sp
                        .snapshot
                        .iter()
                        .map(|(v, old)| counts.get(v).copied().unwrap_or(0).saturating_sub(*old))
                        .sum();
                    delta as f64 / (window as f64 / 1e9)
                }
                MonitorMode::PebsSampling { period } => {
                    let counts = engine.true_access_counts();
                    let sampled: u64 = sp
                        .snapshot
                        .iter()
                        .map(|(v, old)| {
                            counts.get(v).copied().unwrap_or(0).saturating_sub(*old) / period as u64
                        })
                        .sum();
                    (sampled * period as u64) as f64 / (window as f64 / 1e9)
                }
            };
            estimates.push(Candidate {
                vpn: sp.vpn,
                rate_per_sec: rate,
            });
        }

        // 2. §3.5 correction over the existing cold set (whole cold huge
        //    pages plus any split-placed cold children).
        let mut promoted = 0u32;
        let mut correction_rate_before = 0.0;
        let mut correction_rate_after = 0.0;
        if self.config.correction_enabled
            && (!self.cold.is_empty() || !self.partial_children.is_empty())
        {
            let correction = self.correction_observations(engine);
            correction_rate_before = correction.rate_before;
            correction_rate_after = correction.rate_after;
            promoted = self.apply_promotions(engine, &correction.promote);
        }

        // 3. §3.4 classification of the sampled pages, then one placement
        //    plan: demote the cold ones, collapse or split-place the hot
        //    ones.
        let budget = self.sampled_fraction_actual * threshold;
        let result = classify(estimates, budget);
        let fabric_mode = engine.config().fabric.enabled;
        let cold_ops = if fabric_mode { 2 } else { 1 };
        let mut plan = PolicyPlan::new();
        for c in &result.cold {
            if fabric_mode {
                // Transactional demotion: restore the page to one huge leaf
                // and open an async copy toward slow memory. The page stays
                // accessible; a write mid-copy aborts and retries on the
                // fabric, and the commit lands in a later split phase.
                plan.push(PlanOp::Collapse { vpn: c.vpn });
                plan.push(PlanOp::BeginMigrate {
                    vpn: c.vpn,
                    target: Tier::Slow,
                });
            } else {
                plan.push(PlanOp::DemoteHuge { vpn: c.vpn });
            }
        }
        for c in &result.hot {
            let sp = sample
                .iter()
                .find(|s| s.vpn == c.vpn)
                .expect("sampled page tracked");
            match decide::split_place_children(&self.config, sp.vpn, &sp.accessed_set) {
                Some(cold_children) => plan.push(PlanOp::SplitPlace {
                    vpn: sp.vpn,
                    cold_children,
                }),
                None => plan.push(PlanOp::Collapse { vpn: c.vpn }),
            }
        }
        let receipt = engine.apply_plan(&plan);
        let mut demoted = 0u32;
        if fabric_mode {
            for (i, c) in result.cold.iter().enumerate() {
                let OpOutcome::Begun(id) = receipt.outcomes()[i * cold_ops + 1] else {
                    unreachable!("BeginMigrate returns Begun");
                };
                self.pending_demotes.push((c.vpn, id));
            }
            // The period's demotion count is what actually committed since
            // the previous record, not what was merely begun.
            demoted = std::mem::take(&mut self.fabric_demoted);
        } else {
            for (i, c) in result.cold.iter().enumerate() {
                match receipt.outcomes()[i] {
                    OpOutcome::Done => {
                        demoted += 1;
                        self.cold.insert(c.vpn, ColdPage { split: true });
                    }
                    OpOutcome::DemoteOom => self.stats.demote_oom += 1,
                    _ => unreachable!("DemoteHuge returns Done or DemoteOom"),
                }
            }
        }
        for (i, c) in result.hot.iter().enumerate() {
            match &receipt.outcomes()[result.cold.len() * cold_ops + i] {
                OpOutcome::Placed(placed) if !placed.is_empty() => {
                    self.stats.pages_split_placed += 1;
                    self.stats.split_children_demoted += placed.len() as u64;
                    for &child in placed {
                        self.partial_children.insert(child, c.vpn);
                    }
                }
                // Placed([]) means the engine restored the huge page
                // (slow tier full); Done is a plain collapse.
                OpOutcome::Placed(_) | OpOutcome::Done => {}
                _ => unreachable!("hot placement returns Placed or Done"),
            }
        }

        // 4. Period record. The slow-memory access rate is what the paper's
        // Figure 3 plots: BadgerTrap faults to slow pages under fault
        // emulation (or direct slow-tier accesses in Direct mode) — the
        // engine's slow series records exactly that.
        let slow_faults = engine.slow_series().total();
        let observed = (slow_faults - self.last_slow_faults) as f64
            / (self.config.sampling_period_ns as f64 / 1e9);
        self.last_slow_faults = slow_faults;
        let breakdown = engine.footprint_breakdown();
        self.history.push(PeriodRecord {
            at_ns: engine.now_ns(),
            breakdown,
            demoted_rate: result.cold_rate,
            slow_rate_observed: observed,
            demoted,
            promoted,
            correction_rate_before,
            correction_rate_after,
        });
        self.stats.periods += 1;
        self.stats.pages_demoted += demoted as u64;
        self.stats.pages_promoted += promoted as u64;
    }

    /// Drains the cold set's fault counters (without disturbing their
    /// poisoning) and runs the §3.5 correction planner over them.
    fn correction_observations(
        &mut self,
        engine: &mut Engine,
    ) -> crate::correction::CorrectionPlan {
        let partials: Vec<Vpn> = self.partial_children.keys().copied().collect();
        let cold_meta: Vec<(Vpn, bool)> = self.cold.iter().map(|(&v, c)| (v, c.split)).collect();
        let mut plan = PolicyPlan::new();
        for &child in &partials {
            plan.push(PlanOp::TakeCounts {
                vpn: child,
                split: false,
            });
        }
        for &(vpn, split) in &cold_meta {
            plan.push(PlanOp::TakeCounts { vpn, split });
        }
        let receipt = engine.apply_plan(&plan);
        let mut observations = Vec::with_capacity(plan.len());
        for (i, &child) in partials.iter().enumerate() {
            let OpOutcome::Faults(count) = receipt.outcomes()[i] else {
                unreachable!("TakeCounts returns Faults");
            };
            observations.push(ColdObservation { vpn: child, count });
        }
        for (i, &(vpn, _)) in cold_meta.iter().enumerate() {
            let OpOutcome::Faults(count) = receipt.outcomes()[partials.len() + i] else {
                unreachable!("TakeCounts returns Faults");
            };
            let count = count + self.carry_counts.remove(&vpn).unwrap_or(0);
            observations.push(ColdObservation { vpn, count });
        }
        plan_correction(
            observations,
            self.config.target_slow_access_rate(),
            self.config.sampling_period_ns,
        )
    }

    /// Promotes the pages the correction flagged as hot-again, via one
    /// plan; returns how many the period record should count as promoted.
    fn apply_promotions(&mut self, engine: &mut Engine, promote: &[Vpn]) -> u32 {
        let mut plan = PolicyPlan::new();
        let mut is_partial = Vec::with_capacity(promote.len());
        for &vpn in promote {
            if self.partial_children.contains_key(&vpn) {
                plan.push(PlanOp::PromoteChild { vpn });
                is_partial.push(true);
            } else {
                let split = self.cold.get(&vpn).expect("promoting untracked page").split;
                plan.push(PlanOp::PromoteHuge { vpn, split });
                is_partial.push(false);
            }
        }
        let receipt = engine.apply_plan(&plan);
        let mut promoted = 0u32;
        for ((outcome, &vpn), &partial) in receipt.outcomes().iter().zip(promote).zip(&is_partial) {
            match (partial, outcome) {
                (true, OpOutcome::Done) => {
                    self.partial_children.remove(&vpn);
                    promoted += 1;
                }
                (true, OpOutcome::PromoteOom) => {
                    // The child stays cold (re-poisoned by the engine) but
                    // the period record still counts the attempt.
                    self.stats.promote_oom += 1;
                    promoted += 1;
                }
                (false, OpOutcome::Done) => {
                    self.cold.remove(&vpn);
                    self.carry_counts.remove(&vpn);
                    promoted += 1;
                }
                (false, OpOutcome::PromoteOom) => self.stats.promote_oom += 1,
                _ => unreachable!("promotion returns Done or PromoteOom"),
            }
        }
        promoted
    }

    /// The most recent snapshot shard worker count (introspection).
    pub fn scan_workers(&self) -> usize {
        self.scan_workers
    }
}

impl PolicyHook for Daemon {
    fn next_due_ns(&self) -> u64 {
        self.next_due_ns
    }

    fn policy_name(&self) -> &str {
        "thermostat"
    }

    fn tick(&mut self, engine: &mut Engine) {
        match self.phase {
            Phase::Split => {
                self.split_phase(engine);
                self.phase = Phase::Poison;
            }
            Phase::Poison => {
                self.poison_phase(engine);
                self.phase = Phase::Classify;
            }
            Phase::Classify => {
                self.classify_phase(engine);
                self.phase = Phase::Split;
            }
        }
        self.next_due_ns += self.config.scan_interval_ns();
    }
}

thermo_util::json_struct!(PeriodRecord {
    at_ns,
    breakdown,
    demoted_rate,
    slow_rate_observed,
    demoted,
    promoted,
    correction_rate_before,
    correction_rate_after,
});

thermo_util::json_struct!(DaemonStats {
    periods,
    pages_sampled,
    pages_demoted,
    pages_promoted,
    demote_oom,
    promote_oom,
    pages_split_placed,
    split_children_demoted,
});

//! Pure decision helpers for the daemon's three phases.
//!
//! Everything here computes on snapshot data — no engine access, no side
//! effects beyond the passed-in RNG and epoch set — so the policy's
//! randomness is consumed in exactly one place per decision and in a fixed
//! order. The RNG draw sequence matches the historical in-line code draw
//! for draw, which is what keeps golden artifacts stable across the
//! mechanism/policy split.

use crate::config::ThermostatConfig;
use std::collections::BTreeSet;
use thermo_mem::{Vpn, PAGES_PER_HUGE};
use thermo_util::rng::SliceRandom;
use thermo_util::rng::SmallRng;

/// Picks this period's sample from the fast-tier huge-page candidates:
/// shuffle, prefer pages not yet visited this coverage epoch (stable sort,
/// so the shuffle order breaks ties), and keep `sample_fraction` of them
/// (at least one). Returns the selection and the fraction actually
/// achieved.
///
/// The epoch set is updated in place and reset once every candidate has
/// been visited — the paper samples a *different* random 5% each period
/// "so that eventually all pages are sampled".
pub(super) fn select_sample(
    rng: &mut SmallRng,
    mut candidates: Vec<Vpn>,
    sample_fraction: f64,
    sampled_epoch: &mut BTreeSet<Vpn>,
) -> (Vec<Vpn>, f64) {
    let n_candidates = candidates.len();
    let want = ((n_candidates as f64 * sample_fraction).round() as usize).clamp(1, n_candidates);
    if candidates.iter().all(|v| sampled_epoch.contains(v)) {
        sampled_epoch.clear();
    }
    candidates.shuffle(rng);
    candidates.sort_by_key(|v| sampled_epoch.contains(v)); // stable: unseen first
    candidates.truncate(want);
    for &vpn in &candidates {
        sampled_epoch.insert(vpn);
    }
    (candidates, want as f64 / n_candidates as f64)
}

/// Picks up to `max_poison` of a sampled page's accessed children to
/// poison for BadgerTrap counting (uniformly, by shuffle-and-truncate).
pub(super) fn choose_monitored(
    rng: &mut SmallRng,
    mut accessed: Vec<Vpn>,
    max_poison: usize,
) -> Vec<Vpn> {
    accessed.shuffle(rng);
    accessed.truncate(max_poison);
    accessed
}

/// §6 split placement: decides whether a hot page with a small hot
/// footprint should stay split with its never-accessed children placed in
/// slow memory. Returns those children (in address order) when placement
/// applies, `None` when the page should simply be collapsed.
///
/// `accessed_set` must be in address order (it comes from a
/// [`MemoryView`](thermo_sim::MemoryView) range, which guarantees that).
pub(super) fn split_place_children(
    config: &ThermostatConfig,
    vpn: Vpn,
    accessed_set: &[Vpn],
) -> Option<Vec<Vpn>> {
    if !config.split_placement_enabled {
        return None;
    }
    let cold_children = PAGES_PER_HUGE - accessed_set.len();
    if cold_children < config.split_placement_min_cold_children {
        return None;
    }
    Some(
        (0..PAGES_PER_HUGE as u64)
            .map(|i| vpn.offset(i))
            .filter(|child| accessed_set.binary_search(child).is_err())
            .collect(),
    )
}

use super::*;
use thermo_mem::VirtAddr;
use thermo_sim::{run_for, Access, SimConfig, Workload};

/// A workload with one blazing-hot huge page and N idle ones.
struct OneHot {
    base: VirtAddr,
    n_huge: u64,
    i: u64,
}

impl Workload for OneHot {
    fn name(&self) -> &str {
        "onehot"
    }

    fn init(&mut self, engine: &mut Engine) {
        self.base = engine.mmap(self.n_huge * (2 << 20), true, true, false, "heap");
        for p in 0..self.n_huge {
            engine.access(self.base + p * (2 << 20), true);
        }
    }

    fn next_op(&mut self, _now: u64, acc: &mut Vec<Access>) -> Option<u64> {
        // Hammer page 0 at fine grain.
        acc.push(Access::read(self.base + (self.i * 64) % (2 << 20)));
        self.i += 1;
        Some(2_000)
    }
}

fn fast_config() -> ThermostatConfig {
    ThermostatConfig {
        sampling_period_ns: 300_000_000, // 100ms scans for test speed
        sample_fraction: 0.5,            // sample aggressively in tests
        // Tiny test workloads have low absolute access rates; a tight
        // slowdown target keeps their hot pages clearly above budget.
        tolerable_slowdown_pct: 0.5,
        ..ThermostatConfig::paper_defaults()
    }
}

fn engine() -> Engine {
    let mut cfg = SimConfig::paper_defaults(256 << 20, 256 << 20);
    // Aggressive OS-noise flushing so the degenerate one-page test
    // workloads still exhibit TLB misses (real workloads get this from
    // capacity pressure instead).
    cfg.tlb_flush_period_ns = Some(100_000);
    Engine::new(cfg)
}

#[test]
fn daemon_demotes_idle_pages_not_the_hot_one() {
    let mut e = engine();
    let mut w = OneHot {
        base: VirtAddr(0),
        n_huge: 16,
        i: 0,
    };
    w.init(&mut e);
    let mut d = Daemon::new(fast_config());
    run_for(&mut e, &mut w, &mut d, 5_000_000_000);
    assert!(d.stats().periods >= 3, "daemon must have completed periods");
    assert!(
        d.cold_pages() >= 8,
        "idle pages must be demoted, got {}",
        d.cold_pages()
    );
    // The hot page stays in fast memory.
    assert_eq!(e.tier_of_vpn(w.base.vpn()), Some(Tier::Fast));
    // Demoted pages ended up consolidated as huge pages in slow tier.
    let fb = e.footprint_breakdown();
    assert!(fb.huge_slow > 0);
}

#[test]
fn cold_pages_stay_monitored_and_counted() {
    let mut e = engine();
    let mut w = OneHot {
        base: VirtAddr(0),
        n_huge: 8,
        i: 0,
    };
    w.init(&mut e);
    let mut d = Daemon::new(fast_config());
    run_for(&mut e, &mut w, &mut d, 4_000_000_000);
    let cold = d.cold_pages();
    assert!(cold > 0);
    // Every tracked cold page is either huge-poisoned or child-poisoned.
    for &vpn in d.cold.keys() {
        let poisoned = e.trap().is_poisoned(vpn) || e.trap().is_poisoned(vpn.offset(0));
        assert!(poisoned, "cold page {vpn} must be monitored");
    }
}

/// A workload whose hot set migrates: phase 1 hammers page A, phase 2
/// hammers page B (previously idle).
struct PhaseShift {
    base: VirtAddr,
    n_huge: u64,
    i: u64,
    shift_at_ns: u64,
}

impl Workload for PhaseShift {
    fn name(&self) -> &str {
        "phaseshift"
    }

    fn init(&mut self, engine: &mut Engine) {
        self.base = engine.mmap(self.n_huge * (2 << 20), true, true, false, "heap");
        for p in 0..self.n_huge {
            engine.access(self.base + p * (2 << 20), true);
        }
    }

    fn next_op(&mut self, now: u64, acc: &mut Vec<Access>) -> Option<u64> {
        let page = if now < self.shift_at_ns { 0 } else { 1 };
        acc.push(Access::read(
            self.base + page * (2 << 20) + (self.i * 64) % (2 << 20),
        ));
        self.i += 1;
        Some(2_000)
    }
}

#[test]
fn correction_promotes_page_that_becomes_hot() {
    let mut e = engine();
    let mut w = PhaseShift {
        base: VirtAddr(0),
        n_huge: 8,
        i: 0,
        shift_at_ns: 3_000_000_000,
    };
    w.init(&mut e);
    let mut d = Daemon::new(fast_config());
    run_for(&mut e, &mut w, &mut d, 8_000_000_000);
    // Page 1 was idle in phase 1 (likely demoted) but must be back in
    // fast memory by the end.
    let page1 = (w.base + (2 << 20)).vpn();
    assert_eq!(
        e.tier_of_vpn(page1),
        Some(Tier::Fast),
        "hot page must be promoted back"
    );
    assert!(
        d.stats().pages_promoted > 0,
        "correction must have promoted pages"
    );
}

#[test]
fn runtime_slowdown_knob() {
    let mut d = Daemon::new(fast_config());
    d.set_tolerable_slowdown_pct(6.0);
    assert!((d.config().target_slow_access_rate() - 60_000.0).abs() < 1e-9);
}

#[test]
#[should_panic(expected = "slowdown")]
fn bad_runtime_knob_panics() {
    let mut d = Daemon::new(fast_config());
    d.set_tolerable_slowdown_pct(-1.0);
}

#[test]
fn split_placement_moves_cold_children_of_hot_pages() {
    // One huge page where only 8 of 512 children are ever touched:
    // classic small-hot-footprint page. With split placement the cold
    // 504 children end up in slow memory while the page stays usable.
    struct SparseHot {
        base: VirtAddr,
        i: u64,
    }
    impl Workload for SparseHot {
        fn name(&self) -> &str {
            "sparsehot"
        }
        fn init(&mut self, engine: &mut Engine) {
            self.base = engine.mmap(4 << 20, true, true, false, "heap");
            engine.access(self.base, true);
            engine.access(self.base + (2 << 20), true);
        }
        fn next_op(&mut self, _now: u64, acc: &mut Vec<Access>) -> Option<u64> {
            // Hammer 8 children of huge page 0 hard.
            let child = (self.i % 8) * 4096;
            acc.push(Access::read(self.base + child + (self.i * 64) % 4096));
            self.i += 1;
            Some(1_000)
        }
    }
    let mut e = engine();
    let mut w = SparseHot {
        base: VirtAddr(0),
        i: 0,
    };
    w.init(&mut e);
    let mut cfg = fast_config();
    cfg.split_placement_enabled = true;
    cfg.sample_fraction = 1.0; // always sample both pages
    let mut d = Daemon::new(cfg);
    run_for(&mut e, &mut w, &mut d, 3_000_000_000);
    assert!(
        d.stats().pages_split_placed > 0,
        "sparse-hot page must be split-placed"
    );
    assert!(
        d.partial_children() > 400,
        "most children go cold: {}",
        d.partial_children()
    );
    // The hot children stayed in fast memory.
    assert_eq!(e.tier_of_vpn(w.base.vpn()), Some(Tier::Fast));
    // And cold children really are in the slow tier.
    let cold_child = w.base.vpn().offset(300);
    assert_eq!(e.tier_of_vpn(cold_child), Some(Tier::Slow));
}

#[test]
fn split_placement_off_by_default_keeps_pages_whole() {
    let mut e = engine();
    let mut w = OneHot {
        base: VirtAddr(0),
        n_huge: 8,
        i: 0,
    };
    w.init(&mut e);
    let mut d = Daemon::new(fast_config());
    run_for(&mut e, &mut w, &mut d, 2_000_000_000);
    assert_eq!(d.partial_children(), 0);
    assert_eq!(d.stats().pages_split_placed, 0);
}

#[test]
fn history_records_periods() {
    let mut e = engine();
    let mut w = OneHot {
        base: VirtAddr(0),
        n_huge: 4,
        i: 0,
    };
    w.init(&mut e);
    let mut d = Daemon::new(fast_config());
    run_for(&mut e, &mut w, &mut d, 3_000_000_000);
    assert_eq!(d.history().len() as u64, d.stats().periods);
    for r in d.history() {
        assert!(r.breakdown.total() > 0);
    }
}

#[test]
fn daemon_identical_for_any_scan_worker_count() {
    // The whole policy loop — splits, poisons, classification, migrations
    // — must be bit-identical whether snapshots are built inline or by a
    // worker pool.
    let run = |workers: usize| {
        let mut e = engine();
        let mut w = OneHot {
            base: VirtAddr(0),
            n_huge: 16,
            i: 0,
        };
        w.init(&mut e);
        let mut d = Daemon::with_scan_workers(fast_config(), workers);
        run_for(&mut e, &mut w, &mut d, 4_000_000_000);
        (
            e.now_ns(),
            e.stats(),
            d.stats(),
            d.history().to_vec(),
            d.cold.keys().copied().collect::<Vec<_>>(),
        )
    };
    let inline = run(1);
    assert_eq!(inline, run(4));
    assert_eq!(inline, run(3));
}

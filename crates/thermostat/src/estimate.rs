//! Spatial extrapolation of huge-page access rates (paper §3.2).
//!
//! *"To compute the aggregate access rate at 2MB granularity from the
//! access rates of the sampled 4KB pages, we scale the observed access rate
//! in the sample by the total number of 4KB pages that were marked as
//! accessed. The monitored 4KB pages comprise a random sample of accessed
//! pages, while the remaining pages have a negligible access rate."*

/// Access-rate estimate for one huge page.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageEstimate {
    /// Total faults observed across the poisoned sample.
    pub sampled_faults: u64,
    /// Number of 4KB pages that were poisoned/monitored.
    pub sampled_pages: u32,
    /// Number of 4KB pages whose Accessed bit was set in the prefilter
    /// (the extrapolation multiplier).
    pub accessed_pages: u32,
    /// Estimated accesses/second for the whole 2MB page.
    pub rate_per_sec: f64,
}

/// Computes the §3.2 estimate.
///
/// `window_ns` is the monitoring sub-interval during which the faults were
/// counted. Returns a zero-rate estimate when nothing was accessed or the
/// sample is empty (a page whose prefilter found no accessed children is
/// cold by construction).
///
/// # Panics
///
/// Panics if `window_ns` is zero.
pub fn extrapolate(
    sampled_faults: u64,
    sampled_pages: u32,
    accessed_pages: u32,
    window_ns: u64,
) -> PageEstimate {
    assert!(window_ns > 0, "monitoring window must be positive");
    let rate = if sampled_pages == 0 || accessed_pages == 0 {
        0.0
    } else {
        let per_page = sampled_faults as f64 / sampled_pages as f64;
        let total = per_page * accessed_pages as f64;
        total / (window_ns as f64 / 1e9)
    };
    PageEstimate {
        sampled_faults,
        sampled_pages,
        accessed_pages,
        rate_per_sec: rate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn full_sample_is_direct_rate() {
        // 10 pages accessed, all 10 sampled, 100 faults over 1s -> 100/s.
        let e = extrapolate(100, 10, 10, SEC);
        assert!((e.rate_per_sec - 100.0).abs() < 1e-9);
    }

    #[test]
    fn partial_sample_scales_up() {
        // 200 accessed children, 50 sampled, 100 faults in 10s:
        // per-page 2 faults -> 400 total faults -> 40/s.
        let e = extrapolate(100, 50, 200, 10 * SEC);
        assert!((e.rate_per_sec - 40.0).abs() < 1e-9);
    }

    #[test]
    fn no_accessed_children_means_cold() {
        let e = extrapolate(0, 0, 0, SEC);
        assert_eq!(e.rate_per_sec, 0.0);
    }

    #[test]
    fn zero_faults_zero_rate() {
        let e = extrapolate(0, 50, 512, SEC);
        assert_eq!(e.rate_per_sec, 0.0);
    }

    #[test]
    fn window_scaling() {
        let long = extrapolate(100, 10, 10, 10 * SEC);
        let short = extrapolate(100, 10, 10, SEC);
        assert!((short.rate_per_sec / long.rate_per_sec - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_panics() {
        extrapolate(1, 1, 1, 0);
    }

    #[test]
    fn sampling_correction_factor_is_accessed_over_sampled() {
        // The paper's K=50 cap: 50 poisoned pages out of 512 accessed
        // children. The extrapolation multiplier must be exactly
        // accessed/sampled = 10.24, independent of the fault count.
        for faults in [1u64, 50, 1000] {
            let e = extrapolate(faults, 50, 512, SEC);
            let direct = faults as f64; // faults/sec with a 1s window
            assert!((e.rate_per_sec / direct - 512.0 / 50.0).abs() < 1e-9);
        }
    }

    #[test]
    fn all_children_hot_full_poison() {
        // All 512 children accessed and all monitored: no extrapolation,
        // the rate is the raw fault rate.
        let e = extrapolate(2048, 512, 512, 2 * SEC);
        assert!((e.rate_per_sec - 1024.0).abs() < 1e-9);
    }

    #[test]
    fn single_page_sample_extrapolates_to_whole_huge_page() {
        // Degenerate single-child sample: 1 poisoned page stands in for
        // 512 accessed children.
        let e = extrapolate(3, 1, 512, SEC);
        assert!((e.rate_per_sec - 3.0 * 512.0).abs() < 1e-9);
        assert_eq!(e.sampled_faults, 3);
        assert_eq!(e.accessed_pages, 512);
    }

    #[test]
    fn accessed_without_sample_is_cold_not_nan() {
        // Prefilter saw accesses but no page could be poisoned (e.g. all
        // children raced to unpoison): the estimate must be 0, not NaN.
        let e = extrapolate(0, 0, 12, SEC);
        assert_eq!(e.rate_per_sec, 0.0);
        assert!(e.rate_per_sec.is_finite());
    }
}

//! **Thermostat** — application-transparent, huge-page-aware hot/cold page
//! classification and placement for two-tiered main memory.
//!
//! Reproduction of Agarwal & Wenisch, ASPLOS 2017. The mechanism takes one
//! input — a tolerable slowdown — and continuously:
//!
//! 1. samples a small fraction (5%) of huge pages, splitting them to 4KB
//!    granularity ([`Daemon`], §3.2);
//! 2. estimates each sampled page's access rate by poisoning ≤50 accessed
//!    4KB children and counting BadgerTrap faults, then spatially
//!    extrapolating ([`estimate`], §3.2–3.3);
//! 3. translates the slowdown target into a slow-memory access-rate budget
//!    and places the coldest pages in slow memory ([`classify`], §3.4);
//! 4. keeps monitoring cold pages and migrates mis-classified or
//!    newly-hot pages back ([`correction`], §3.5).
//!
//! # Example
//!
//! ```
//! use thermostat::{Daemon, ThermostatConfig};
//! use thermo_sim::{Engine, SimConfig, run_for, Access, Workload};
//!
//! // A trivial workload: hammer the first of four huge pages.
//! struct Hammer { base: thermo_mem::VirtAddr, i: u64 }
//! impl Workload for Hammer {
//!     fn name(&self) -> &str { "hammer" }
//!     fn init(&mut self, e: &mut Engine) {
//!         self.base = e.mmap(8 << 20, true, true, false, "heap");
//!         for p in 0..4 { e.access(self.base + p * (2 << 20), true); }
//!     }
//!     fn next_op(&mut self, _t: u64, acc: &mut Vec<Access>) -> Option<u64> {
//!         acc.push(Access::read(self.base + (self.i * 64) % (2 << 20)));
//!         self.i += 1;
//!         Some(2_000)
//!     }
//! }
//!
//! let mut engine = Engine::new(SimConfig::paper_defaults(64 << 20, 64 << 20));
//! let mut app = Hammer { base: thermo_mem::VirtAddr(0), i: 0 };
//! app.init(&mut engine);
//! let mut daemon = Daemon::new(ThermostatConfig {
//!     sampling_period_ns: 300_000_000,
//!     sample_fraction: 0.5,
//!     ..ThermostatConfig::paper_defaults()
//! });
//! run_for(&mut engine, &mut app, &mut daemon, 3_000_000_000);
//! assert!(daemon.cold_pages() > 0, "idle pages should be in slow memory");
//! ```

#![warn(missing_docs)]
pub mod classify;
pub mod config;
pub mod correction;
pub mod daemon;
pub mod estimate;

pub use classify::{classify, Candidate, Classification};
pub use config::{MonitorMode, ThermostatConfig};
pub use correction::{plan_correction, ColdObservation, CorrectionPlan};
pub use daemon::{Daemon, DaemonStats, PeriodRecord};
pub use estimate::{extrapolate, PageEstimate};

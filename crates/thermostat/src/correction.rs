//! Mis-classification correction (paper §3.5).
//!
//! *"We track the number of accesses being made to each cold huge page...
//! In every sampling period we sort the huge pages in slow memory by their
//! access counts and their aggregate access count is compared to the
//! target access rate to slow memory. The most frequently accessed pages
//! are then migrated back to fast memory until the access rate to the
//! remaining cold pages is below the threshold."* This both repairs
//! sampling errors and adapts to working-set changes.

use thermo_mem::Vpn;

/// Observed per-period access count of one cold page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColdObservation {
    /// Base VPN of the cold huge page.
    pub vpn: Vpn,
    /// Faults counted during the period.
    pub count: u64,
}

/// Correction decision.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrectionPlan {
    /// Pages to promote back to fast memory, hottest first.
    pub promote: Vec<Vpn>,
    /// Aggregate slow-memory access rate before correction, accesses/sec.
    pub rate_before: f64,
    /// Aggregate rate of the pages that remain cold, accesses/sec.
    pub rate_after: f64,
}

/// Decides which cold pages to promote given the per-period observations.
///
/// Promotes hottest-first until the aggregate rate of the remaining cold
/// pages drops to `threshold` (accesses/sec). `period_ns` converts counts
/// to rates.
///
/// # Panics
///
/// Panics if `period_ns` is zero.
pub fn plan_correction(
    mut observations: Vec<ColdObservation>,
    threshold: f64,
    period_ns: u64,
) -> CorrectionPlan {
    assert!(period_ns > 0, "period must be positive");
    let period_sec = period_ns as f64 / 1e9;
    let total: u64 = observations.iter().map(|o| o.count).sum();
    let rate_before = total as f64 / period_sec;
    // Hottest first; ties broken by VPN for determinism.
    observations.sort_by(|a, b| b.count.cmp(&a.count).then(a.vpn.cmp(&b.vpn)));
    let mut promote = Vec::new();
    let mut remaining = rate_before;
    for o in &observations {
        if remaining <= threshold {
            break;
        }
        promote.push(o.vpn);
        remaining -= o.count as f64 / period_sec;
    }
    CorrectionPlan {
        promote,
        rate_before,
        rate_after: remaining.max(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    fn obs(vpn: u64, count: u64) -> ColdObservation {
        ColdObservation {
            vpn: Vpn(vpn),
            count,
        }
    }

    #[test]
    fn no_promotion_below_threshold() {
        let p = plan_correction(vec![obs(1, 10), obs(2, 5)], 100.0, SEC);
        assert!(p.promote.is_empty());
        assert!((p.rate_before - 15.0).abs() < 1e-9);
        assert_eq!(p.rate_after, p.rate_before);
    }

    #[test]
    fn promotes_hottest_first_until_under_threshold() {
        // Counts: 100, 50, 5, 1 over 1s; threshold 10/s.
        let p = plan_correction(
            vec![obs(1, 5), obs(2, 100), obs(3, 50), obs(4, 1)],
            10.0,
            SEC,
        );
        assert_eq!(p.promote, vec![Vpn(2), Vpn(3)]);
        assert!((p.rate_after - 6.0).abs() < 1e-9);
    }

    #[test]
    fn promotes_everything_if_needed() {
        let p = plan_correction(vec![obs(1, 100), obs(2, 100)], 0.0, SEC);
        assert_eq!(p.promote.len(), 2);
        assert_eq!(p.rate_after, 0.0);
    }

    #[test]
    fn empty_observations() {
        let p = plan_correction(vec![], 10.0, SEC);
        assert!(p.promote.is_empty());
        assert_eq!(p.rate_before, 0.0);
    }

    #[test]
    fn period_scaling() {
        // 300 counts over 10s = 30/s; threshold 40/s -> fine.
        let p = plan_correction(vec![obs(1, 300)], 40.0, 10 * SEC);
        assert!(p.promote.is_empty());
        // Same counts over 1s = 300/s -> must promote.
        let p = plan_correction(vec![obs(1, 300)], 40.0, SEC);
        assert_eq!(p.promote, vec![Vpn(1)]);
    }

    #[test]
    fn deterministic_tie_break() {
        let p = plan_correction(vec![obs(9, 50), obs(3, 50)], 10.0, SEC);
        assert_eq!(p.promote[0], Vpn(3));
    }

    #[test]
    #[should_panic(expected = "period")]
    fn zero_period_panics() {
        plan_correction(vec![], 1.0, 0);
    }

    #[test]
    fn exactly_at_threshold_needs_no_promotion() {
        // Boundary: remaining rate == threshold stops promotion.
        let p = plan_correction(vec![obs(1, 40), obs(2, 10)], 50.0, SEC);
        assert!(p.promote.is_empty());
        assert!((p.rate_after - 50.0).abs() < 1e-9);
    }

    #[test]
    fn single_observation_over_threshold_promotes_it() {
        let p = plan_correction(vec![obs(3, 1000)], 999.0, SEC);
        assert_eq!(p.promote, vec![Vpn(3)]);
        assert_eq!(p.rate_after, 0.0);
    }

    #[test]
    fn zero_count_pages_never_promoted() {
        // Pages with zero faults can never reduce the rate; once the
        // positive-count pages are promoted the planner must stop rather
        // than uselessly promoting the zero-count remainder.
        let p = plan_correction(vec![obs(1, 0), obs(2, 0), obs(3, 7)], 0.0, SEC);
        assert_eq!(p.promote, vec![Vpn(3)]);
        assert_eq!(p.rate_after, 0.0);
    }
}

//! Hot/cold classification (paper §3.4).
//!
//! *"We sort the sampled huge pages in increasing order of their estimated
//! access rates, and then place the coldest pages in slow memory until the
//! total access rate reaches the target threshold."* The budget for the
//! sampled subset is the sampled fraction times the global threshold
//! (`f · x / (100 · ts)`).

use thermo_mem::Vpn;

/// A sampled huge page with its estimated rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Base VPN of the huge page.
    pub vpn: Vpn,
    /// Estimated accesses/second (§3.2 extrapolation).
    pub rate_per_sec: f64,
}

/// Classification outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Classification {
    /// Pages to place in slow memory, coldest first.
    pub cold: Vec<Candidate>,
    /// Pages that stay in fast memory.
    pub hot: Vec<Candidate>,
    /// Aggregate estimated rate of the cold set, accesses/sec.
    pub cold_rate: f64,
    /// The budget that was applied.
    pub budget: f64,
}

/// Splits `candidates` into cold and hot sets under `budget` (accesses per
/// second available to the cold set).
///
/// Pages are considered coldest-first; a page is placed cold while the
/// cumulative estimated rate stays within the budget. Ties on rate are
/// broken by VPN for determinism.
pub fn classify(mut candidates: Vec<Candidate>, budget: f64) -> Classification {
    candidates.sort_by(|a, b| {
        a.rate_per_sec
            .partial_cmp(&b.rate_per_sec)
            .expect("rates are never NaN")
            .then(a.vpn.cmp(&b.vpn))
    });
    let mut cold = Vec::new();
    let mut hot = Vec::new();
    let mut cum = 0.0;
    let mut filled = false;
    for c in candidates {
        if !filled && cum + c.rate_per_sec <= budget {
            cum += c.rate_per_sec;
            cold.push(c);
        } else {
            // Once the budget is exhausted every hotter page is hot too
            // (the list is sorted), but keep scanning to fill `hot`.
            filled = true;
            hot.push(c);
        }
    }
    Classification {
        cold,
        hot,
        cold_rate: cum,
        budget,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(vpn: u64, rate: f64) -> Candidate {
        Candidate {
            vpn: Vpn(vpn),
            rate_per_sec: rate,
        }
    }

    #[test]
    fn coldest_pages_fill_budget_first() {
        let c = classify(vec![cand(1, 100.0), cand(2, 1.0), cand(3, 10.0)], 12.0);
        let cold_vpns: Vec<u64> = c.cold.iter().map(|c| c.vpn.0).collect();
        assert_eq!(cold_vpns, vec![2, 3]);
        assert_eq!(c.hot.len(), 1);
        assert!((c.cold_rate - 11.0).abs() < 1e-9);
    }

    #[test]
    fn zero_rate_pages_always_fit() {
        let c = classify(vec![cand(1, 0.0), cand(2, 0.0), cand(3, 50.0)], 0.0);
        assert_eq!(c.cold.len(), 2);
        assert_eq!(c.hot.len(), 1);
        assert_eq!(c.cold_rate, 0.0);
    }

    #[test]
    fn budget_never_exceeded() {
        let cands: Vec<Candidate> = (0..100).map(|i| cand(i, i as f64)).collect();
        let budget = 137.0;
        let c = classify(cands, budget);
        assert!(c.cold_rate <= budget);
        // Greedy on the sorted order: adding the cheapest hot page would
        // break the budget.
        if let Some(first_hot) = c.hot.first() {
            assert!(c.cold_rate + first_hot.rate_per_sec > budget);
        }
    }

    #[test]
    fn empty_input() {
        let c = classify(vec![], 100.0);
        assert!(c.cold.is_empty() && c.hot.is_empty());
        assert_eq!(c.cold_rate, 0.0);
    }

    #[test]
    fn all_hot_when_budget_zero_and_rates_positive() {
        let c = classify(vec![cand(1, 5.0), cand(2, 1.0)], 0.5);
        assert!(c.cold.is_empty());
        assert_eq!(c.hot.len(), 2);
    }

    #[test]
    fn ten_percent_coldest_selected_under_matching_budget() {
        // The paper's target: place ~10% of memory cold. 100 pages with
        // rates 0..100/s; a budget equal to the sum of the 10 coldest
        // rates must select exactly those 10 pages, coldest first.
        let cands: Vec<Candidate> = (0..100).map(|i| cand(i, i as f64)).collect();
        let budget: f64 = (0..10).map(|i| i as f64).sum(); // 45.0
        let c = classify(cands, budget);
        let cold_vpns: Vec<u64> = c.cold.iter().map(|c| c.vpn.0).collect();
        assert_eq!(cold_vpns, (0..10).collect::<Vec<u64>>());
        assert_eq!(c.hot.len(), 90);
        assert!((c.cold_rate - budget).abs() < 1e-9);
    }

    #[test]
    fn single_candidate_within_and_over_budget() {
        let c = classify(vec![cand(7, 10.0)], 10.0);
        assert_eq!(c.cold.len(), 1, "exactly-at-budget page is cold");
        let c = classify(vec![cand(7, 10.1)], 10.0);
        assert!(c.cold.is_empty(), "over-budget single page stays hot");
        assert_eq!(c.hot.len(), 1);
    }

    #[test]
    fn everything_cold_under_infinite_budget() {
        let cands: Vec<Candidate> = (0..20).map(|i| cand(i, (i * 7) as f64)).collect();
        let c = classify(cands, f64::INFINITY);
        assert_eq!(c.cold.len(), 20);
        assert!(c.hot.is_empty());
    }

    #[test]
    fn deterministic_tie_break_by_vpn() {
        let a = classify(vec![cand(9, 1.0), cand(3, 1.0), cand(5, 1.0)], 2.0);
        let vpns: Vec<u64> = a.cold.iter().map(|c| c.vpn.0).collect();
        assert_eq!(vpns, vec![3, 5]);
    }
}

//! Thermostat's runtime configuration (the paper's cgroup interface).
//!
//! §3.1: "Thermostat can be controlled at runtime via the Linux memory
//! control group (cgroup) mechanism. All processes in the same cgroup share
//! Thermostat parameters, such as the sampling period and maximum tolerable
//! slowdown." The single required input is the tolerable slowdown; §3.4
//! translates it into an access-rate threshold: a slowdown of `x`% with
//! slow-memory latency `ts` allows `x / (100 · ts)` slow accesses per
//! second (30K/s for the paper's 3% and 1us).

/// How the monitoring step counts accesses to sampled pages (§3.3 and the
/// §6.1 hardware-extension discussion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorMode {
    /// BadgerTrap-style PTE poisoning: count TLB-miss faults on ≤K sampled
    /// 4KB pages (the paper's software-only mechanism).
    PoisonSampling,
    /// Idealized "count miss" (CM) bit: exact per-page access counts with
    /// zero overhead (§6.1.1). Requires the engine's true-access tracking.
    IdealCmBit,
    /// PEBS-style sampling (§6.1.2): every `period`-th access is observed.
    /// Requires the engine's true-access tracking.
    PebsSampling {
        /// Sampling period (e.g. 64 = one record per 64 accesses).
        period: u32,
    },
}

/// Thermostat parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermostatConfig {
    /// Maximum tolerable slowdown in percent (the paper evaluates 3, 6, 10).
    pub tolerable_slowdown_pct: f64,
    /// Assumed slow-memory access latency `ts`, ns (1us in the paper).
    pub slow_mem_latency_ns: u64,
    /// Fraction of huge pages sampled per period (5% in the paper).
    pub sample_fraction: f64,
    /// Maximum 4KB pages poisoned per sampled huge page (K = 50).
    pub max_poison_per_page: usize,
    /// Sampling period length (30s in the paper). Each period runs the three
    /// scans of Figure 4 at period/3 spacing.
    pub sampling_period_ns: u64,
    /// Enable the §3.5 mis-classification correction mechanism.
    pub correction_enabled: bool,
    /// Access counting mechanism.
    pub monitor_mode: MonitorMode,
    /// §6 extension ("left for future work" in the paper): spread a 2MB
    /// page across tiers when most of it is cold — keep the hot 4KB
    /// children in fast memory, place the never-accessed children in slow
    /// memory, and leave the page split. Trades TLB reach for fast-memory
    /// capacity. Off by default (the paper's mechanism).
    pub split_placement_enabled: bool,
    /// Minimum never-accessed 4KB children (out of 512) for a hot page to
    /// qualify for split placement.
    pub split_placement_min_cold_children: usize,
    /// RNG seed for sampling decisions.
    pub seed: u64,
}

impl ThermostatConfig {
    /// The paper's evaluated configuration: 3% slowdown, 1us slow memory,
    /// 5% sampling, K=50, 30s periods, correction on.
    pub fn paper_defaults() -> Self {
        Self {
            tolerable_slowdown_pct: 3.0,
            slow_mem_latency_ns: 1_000,
            sample_fraction: 0.05,
            max_poison_per_page: 50,
            sampling_period_ns: 30_000_000_000,
            correction_enabled: true,
            monitor_mode: MonitorMode::PoisonSampling,
            split_placement_enabled: false,
            split_placement_min_cold_children: 384,
            seed: 0x7e40_57a7,
        }
    }

    /// §3.4's threshold: the aggregate slow-memory access rate (accesses
    /// per second) that keeps the slowdown within the target.
    ///
    /// `x% / (100 · ts)`: 3% at 1us → 30,000 accesses/sec.
    pub fn target_slow_access_rate(&self) -> f64 {
        let ts_sec = self.slow_mem_latency_ns as f64 / 1e9;
        self.tolerable_slowdown_pct / (100.0 * ts_sec)
    }

    /// Length of one scan sub-interval (a third of the sampling period,
    /// matching Figure 4's three scans per period).
    pub fn scan_interval_ns(&self) -> u64 {
        self.sampling_period_ns / 3
    }

    /// Validates parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range parameters; called by the daemon constructor.
    pub fn validate(&self) {
        assert!(
            self.tolerable_slowdown_pct > 0.0 && self.tolerable_slowdown_pct < 100.0,
            "tolerable slowdown must be in (0, 100)%"
        );
        assert!(
            self.slow_mem_latency_ns > 0,
            "slow memory latency must be positive"
        );
        assert!(
            self.sample_fraction > 0.0 && self.sample_fraction <= 1.0,
            "sample fraction must be in (0, 1]"
        );
        assert!(
            self.max_poison_per_page > 0,
            "poison budget must be positive"
        );
        assert!(self.sampling_period_ns >= 3, "sampling period too short");
    }
}

impl Default for ThermostatConfig {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_threshold_is_30k() {
        let c = ThermostatConfig::paper_defaults();
        assert!((c.target_slow_access_rate() - 30_000.0).abs() < 1e-9);
    }

    #[test]
    fn threshold_scales_with_slowdown_and_latency() {
        let mut c = ThermostatConfig::paper_defaults();
        c.tolerable_slowdown_pct = 6.0;
        assert!((c.target_slow_access_rate() - 60_000.0).abs() < 1e-9);
        c.slow_mem_latency_ns = 3_000; // 3us slow memory
        assert!((c.target_slow_access_rate() - 20_000.0).abs() < 1e-9);
    }

    #[test]
    fn scan_interval_is_a_third() {
        let c = ThermostatConfig::paper_defaults();
        assert_eq!(c.scan_interval_ns(), 10_000_000_000);
    }

    #[test]
    #[should_panic(expected = "sample fraction")]
    fn invalid_fraction_rejected() {
        let mut c = ThermostatConfig::paper_defaults();
        c.sample_fraction = 0.0;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "slowdown")]
    fn invalid_slowdown_rejected() {
        let mut c = ThermostatConfig::paper_defaults();
        c.tolerable_slowdown_pct = 0.0;
        c.validate();
    }
}

// `MonitorMode` carries data in one variant, so its JSON form is written by
// hand: unit variants as strings, `PebsSampling` externally tagged
// (`{"PebsSampling":{"period":64}}`), matching what the derive produced.
impl thermo_util::json::ToJson for MonitorMode {
    fn to_json(&self) -> thermo_util::json::Value {
        use thermo_util::json::Value;
        match self {
            MonitorMode::PoisonSampling => Value::Str("PoisonSampling".to_string()),
            MonitorMode::IdealCmBit => Value::Str("IdealCmBit".to_string()),
            MonitorMode::PebsSampling { period } => Value::Obj(vec![(
                "PebsSampling".to_string(),
                Value::Obj(vec![("period".to_string(), Value::U64(*period as u64))]),
            )]),
        }
    }
}

impl thermo_util::json::FromJson for MonitorMode {
    fn from_json(v: &thermo_util::json::Value) -> Result<Self, thermo_util::json::JsonError> {
        use thermo_util::json::JsonError;
        match v.as_str() {
            Some("PoisonSampling") => return Ok(MonitorMode::PoisonSampling),
            Some("IdealCmBit") => return Ok(MonitorMode::IdealCmBit),
            Some(other) => {
                return Err(JsonError::new(format!(
                    "MonitorMode: unknown variant {other:?}"
                )))
            }
            None => {}
        }
        let inner = v
            .get("PebsSampling")
            .and_then(|inner| inner.get("period"))
            .ok_or_else(|| JsonError::new(format!("MonitorMode: unexpected shape {v:?}")))?;
        let period: u32 = thermo_util::json::FromJson::from_json(inner)?;
        Ok(MonitorMode::PebsSampling { period })
    }
}

thermo_util::json_struct!(ThermostatConfig {
    tolerable_slowdown_pct,
    slow_mem_latency_ns,
    sample_fraction,
    max_poison_per_page,
    sampling_period_ns,
    correction_enabled,
    monitor_mode,
    split_placement_enabled,
    split_placement_min_cold_children,
    seed,
});

//! The Thermostat policy daemon — the full §3 mechanism as a
//! [`PolicyHook`].
//!
//! Each sampling period (30s in the paper) runs the three scans of
//! Figure 4, spaced a third of a period apart:
//!
//! 1. **Split** — select a random 5% of fast-tier huge pages, split them
//!    into 4KB PTEs, and clear the children's Accessed bits. (Also
//!    consolidates pages demoted in the previous period: collapse them in
//!    slow memory and switch their monitoring to the huge PTE.)
//! 2. **Poison** — read the children's Accessed bits (the cheap hardware
//!    prefilter), then poison up to K = 50 of the accessed children for
//!    BadgerTrap fault counting.
//! 3. **Classify** — collect fault counts, extrapolate per-huge-page
//!    access rates (§3.2), run the §3.5 correction over the existing cold
//!    set, then place the coldest sampled pages in slow memory up to the
//!    §3.4 rate budget; hot pages are collapsed back to 2MB.
//!
//! Cold pages remain poisoned while in slow memory: under the paper's
//! evaluation methodology the ~1us fault **is** the emulated slow-memory
//! access, and its count drives the correction mechanism.

use crate::classify::{classify, Candidate};
use crate::config::{MonitorMode, ThermostatConfig};
use crate::correction::{plan_correction, ColdObservation};
use crate::estimate::extrapolate;
use std::collections::{BTreeMap, HashMap, HashSet};
use thermo_mem::{MemError, PageSize, Tier, Vpn, PAGES_PER_HUGE};
use thermo_sim::{Engine, FootprintBreakdown, PolicyHook};
use thermo_util::rng::SeedableRng;
use thermo_util::rng::SliceRandom;
use thermo_util::rng::SmallRng;
use thermo_vm::ScanHit;

/// Which of Figure 4's three scans runs next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Split,
    Poison,
    Classify,
}

/// A huge page under monitoring this period.
#[derive(Debug, Clone)]
struct SampledPage {
    vpn: Vpn,
    /// Children whose A bit was set in the prefilter.
    accessed_children: u32,
    /// Poisoned children (PoisonSampling mode).
    monitored: Vec<Vpn>,
    /// True-count snapshot at poison time (hardware-assisted modes).
    snapshot: Vec<(Vpn, u64)>,
    /// Full accessed-children set (kept only when split placement is on).
    accessed_set: Vec<Vpn>,
}

/// Bookkeeping for a page currently placed in slow memory.
#[derive(Debug, Clone, Copy)]
struct ColdPage {
    /// Still split into 4KB PTEs (freshly demoted this period).
    split: bool,
}

/// One record per completed sampling period (drives Figures 5–10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeriodRecord {
    /// Virtual time at the end of the period's classify scan.
    pub at_ns: u64,
    /// Footprint breakdown at that time.
    pub breakdown: FootprintBreakdown,
    /// Estimated aggregate rate of the pages demoted this period, acc/s.
    pub demoted_rate: f64,
    /// Observed aggregate slow-memory access rate over the period, acc/s.
    pub slow_rate_observed: f64,
    /// Pages demoted this period.
    pub demoted: u32,
    /// Pages promoted by correction this period.
    pub promoted: u32,
    /// Aggregate cold-set rate seen by the §3.5 correction before it acted,
    /// acc/s (from the per-page fault counters).
    pub correction_rate_before: f64,
    /// Aggregate rate of the cold pages the correction kept, acc/s.
    pub correction_rate_after: f64,
}

/// Aggregate daemon statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DaemonStats {
    /// Completed sampling periods.
    pub periods: u64,
    /// Huge pages sampled in total.
    pub pages_sampled: u64,
    /// Huge pages demoted to slow memory.
    pub pages_demoted: u64,
    /// Huge pages promoted back by correction.
    pub pages_promoted: u64,
    /// Demotions skipped because the slow tier was full.
    pub demote_oom: u64,
    /// Promotions skipped because the fast tier was full.
    pub promote_oom: u64,
    /// Hot huge pages placed partially (split placement, §6 extension).
    pub pages_split_placed: u64,
    /// Cold 4KB children placed in slow memory by split placement.
    pub split_children_demoted: u64,
}

/// The Thermostat daemon.
#[derive(Debug)]
pub struct Daemon {
    config: ThermostatConfig,
    rng: SmallRng,
    phase: Phase,
    next_due_ns: u64,
    sample: Vec<SampledPage>,
    sampled_fraction_actual: f64,
    cold: BTreeMap<Vpn, ColdPage>,
    /// Fault counts captured during consolidation, credited to the next
    /// correction pass.
    carry_counts: HashMap<Vpn, u64>,
    /// §6 split placement: cold 4KB child -> parent huge-page base.
    partial_children: BTreeMap<Vpn, Vpn>,
    /// Huge pages already sampled in the current coverage epoch. The paper
    /// picks a *different* random sample each period "so that eventually
    /// all pages are sampled"; pages outside this set get priority, and the
    /// epoch resets once every candidate has been visited.
    sampled_epoch: HashSet<Vpn>,
    history: Vec<PeriodRecord>,
    stats: DaemonStats,
    scratch: Vec<ScanHit>,
    last_slow_faults: u64,
}

impl Daemon {
    /// Creates a daemon; the first scan fires one scan interval after t=0.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid
    /// (see [`ThermostatConfig::validate`]).
    pub fn new(config: ThermostatConfig) -> Self {
        config.validate();
        Self {
            rng: SmallRng::seed_from_u64(config.seed),
            phase: Phase::Split,
            next_due_ns: config.scan_interval_ns(),
            sample: Vec::new(),
            sampled_fraction_actual: config.sample_fraction,
            cold: BTreeMap::new(),
            carry_counts: HashMap::new(),
            partial_children: BTreeMap::new(),
            sampled_epoch: HashSet::new(),
            history: Vec::new(),
            stats: DaemonStats::default(),
            scratch: Vec::new(),
            last_slow_faults: 0,
            config,
        }
    }

    /// Current configuration.
    pub fn config(&self) -> &ThermostatConfig {
        &self.config
    }

    /// Changes the tolerable slowdown at runtime (the paper's cgroup knob,
    /// §5: "Thermostat's slowdown threshold can be changed at runtime").
    pub fn set_tolerable_slowdown_pct(&mut self, pct: f64) {
        self.config.tolerable_slowdown_pct = pct;
        self.config.validate();
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> DaemonStats {
        self.stats
    }

    /// Per-period records (Figures 5–10 time series).
    pub fn history(&self) -> &[PeriodRecord] {
        &self.history
    }

    /// Number of huge pages currently placed in slow memory.
    pub fn cold_pages(&self) -> usize {
        self.cold.len()
    }

    /// Number of 4KB children currently split-placed in slow memory
    /// (always 0 unless the §6 split-placement extension is enabled).
    pub fn partial_children(&self) -> usize {
        self.partial_children.len()
    }

    // ------------------------------------------------------------------
    // Scan 1: consolidate + select + split.
    // ------------------------------------------------------------------
    fn split_phase(&mut self, engine: &mut Engine) {
        self.consolidate_previous_cold(engine);

        // Candidate set: huge pages currently resident in fast memory.
        let mut candidates: Vec<Vpn> = Vec::new();
        let regions: Vec<(Vpn, u64)> = engine
            .vmas()
            .iter()
            .map(|v| (v.start.vpn(), v.len / 4096))
            .collect();
        for (start, n) in regions {
            self.scratch.clear();
            engine.read_accessed(start, n, &mut self.scratch);
            for hit in &self.scratch {
                if hit.size == PageSize::Huge2M
                    && engine.tier_of_vpn(hit.base_vpn) == Some(Tier::Fast)
                {
                    candidates.push(hit.base_vpn);
                }
            }
        }
        if candidates.is_empty() {
            self.sample.clear();
            self.sampled_fraction_actual = self.config.sample_fraction;
            return;
        }
        let n_candidates = candidates.len();
        let want = ((n_candidates as f64 * self.config.sample_fraction).round() as usize)
            .clamp(1, n_candidates);
        // Coverage epoch: prefer candidates not yet sampled this epoch so
        // every page is eventually visited (small footprints would
        // otherwise resample the same pages indefinitely).
        if candidates.iter().all(|v| self.sampled_epoch.contains(v)) {
            self.sampled_epoch.clear();
        }
        candidates.shuffle(&mut self.rng);
        candidates.sort_by_key(|v| self.sampled_epoch.contains(v)); // stable: unseen first
        candidates.truncate(want);
        for &vpn in &candidates {
            self.sampled_epoch.insert(vpn);
        }
        self.sampled_fraction_actual = want as f64 / n_candidates as f64;

        self.sample.clear();
        for vpn in candidates {
            engine
                .split_huge(vpn)
                .expect("sampling candidate must be a huge page");
            self.scratch.clear();
            engine.scan_and_clear_accessed(vpn, PAGES_PER_HUGE as u64, &mut self.scratch);
            self.sample.push(SampledPage {
                vpn,
                accessed_children: 0,
                monitored: Vec::new(),
                snapshot: Vec::new(),
                accessed_set: Vec::new(),
            });
        }
        self.stats.pages_sampled += self.sample.len() as u64;
    }

    /// Collapse pages demoted last period: they were migrated into
    /// contiguous huge frames in slow memory, so the 512 child PTEs fold
    /// back into one huge PTE whose poisoning continues the §3.5 monitor.
    fn consolidate_previous_cold(&mut self, engine: &mut Engine) {
        let split_pages: Vec<Vpn> = self
            .cold
            .iter()
            .filter(|(_, c)| c.split)
            .map(|(v, _)| *v)
            .collect();
        for vpn in split_pages {
            let mut sum = 0;
            for i in 0..PAGES_PER_HUGE as u64 {
                sum += engine.unpoison_page(vpn.offset(i));
            }
            engine
                .collapse_huge(vpn)
                .expect("demoted page must be collapsible");
            engine.poison_page(vpn, PageSize::Huge2M);
            *self.carry_counts.entry(vpn).or_insert(0) += sum;
            self.cold.get_mut(&vpn).expect("tracked cold page").split = false;
        }
    }

    // ------------------------------------------------------------------
    // Scan 2: prefilter + poison.
    // ------------------------------------------------------------------
    fn poison_phase(&mut self, engine: &mut Engine) {
        let mode = self.config.monitor_mode;
        for sp in &mut self.sample {
            self.scratch.clear();
            engine.scan_and_clear_accessed(sp.vpn, PAGES_PER_HUGE as u64, &mut self.scratch);
            let mut accessed: Vec<Vpn> = self
                .scratch
                .iter()
                .filter(|h| h.size == PageSize::Small4K && h.accessed)
                .map(|h| h.base_vpn)
                .collect();
            sp.accessed_children = accessed.len() as u32;
            if self.config.split_placement_enabled {
                sp.accessed_set = accessed.clone();
            }
            match mode {
                MonitorMode::PoisonSampling => {
                    accessed.shuffle(&mut self.rng);
                    accessed.truncate(self.config.max_poison_per_page);
                    for &child in &accessed {
                        engine.poison_page(child, PageSize::Small4K);
                    }
                    sp.monitored = accessed;
                }
                MonitorMode::IdealCmBit | MonitorMode::PebsSampling { .. } => {
                    assert!(
                        engine.config().track_true_access,
                        "hardware-assisted monitor modes need track_true_access"
                    );
                    let counts = engine.true_access_counts();
                    sp.snapshot = (0..PAGES_PER_HUGE as u64)
                        .map(|i| {
                            let v = sp.vpn.offset(i);
                            (v, counts.get(&v).copied().unwrap_or(0))
                        })
                        .collect();
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Scan 3: estimate + correct + classify + migrate.
    // ------------------------------------------------------------------
    fn classify_phase(&mut self, engine: &mut Engine) {
        let window = self.config.scan_interval_ns();
        let threshold = self.config.target_slow_access_rate();

        // 1. Access-rate estimates for the sampled pages.
        let mut estimates: Vec<Candidate> = Vec::with_capacity(self.sample.len());
        let sample = std::mem::take(&mut self.sample);
        for sp in &sample {
            let rate = match self.config.monitor_mode {
                MonitorMode::PoisonSampling => {
                    let mut faults = 0;
                    for &child in &sp.monitored {
                        faults += engine.unpoison_page(child);
                    }
                    extrapolate(
                        faults,
                        sp.monitored.len() as u32,
                        sp.accessed_children,
                        window,
                    )
                    .rate_per_sec
                }
                MonitorMode::IdealCmBit => {
                    let counts = engine.true_access_counts();
                    let delta: u64 = sp
                        .snapshot
                        .iter()
                        .map(|(v, old)| counts.get(v).copied().unwrap_or(0).saturating_sub(*old))
                        .sum();
                    delta as f64 / (window as f64 / 1e9)
                }
                MonitorMode::PebsSampling { period } => {
                    let counts = engine.true_access_counts();
                    let sampled: u64 = sp
                        .snapshot
                        .iter()
                        .map(|(v, old)| {
                            counts.get(v).copied().unwrap_or(0).saturating_sub(*old) / period as u64
                        })
                        .sum();
                    (sampled * period as u64) as f64 / (window as f64 / 1e9)
                }
            };
            estimates.push(Candidate {
                vpn: sp.vpn,
                rate_per_sec: rate,
            });
        }

        // 2. §3.5 correction over the existing cold set (whole cold huge
        //    pages plus any split-placed cold children).
        let mut promoted = 0u32;
        let mut correction_rate_before = 0.0;
        let mut correction_rate_after = 0.0;
        if self.config.correction_enabled
            && (!self.cold.is_empty() || !self.partial_children.is_empty())
        {
            let mut observations =
                Vec::with_capacity(self.cold.len() + self.partial_children.len());
            for &child in self.partial_children.keys() {
                let count = engine.trap_mut().take_count(child).unwrap_or(0);
                observations.push(ColdObservation { vpn: child, count });
            }
            for (&vpn, cp) in &self.cold {
                let mut count = self.carry_counts.remove(&vpn).unwrap_or(0);
                if cp.split {
                    for i in 0..PAGES_PER_HUGE as u64 {
                        count += engine.trap_mut().take_count(vpn.offset(i)).unwrap_or(0);
                    }
                } else {
                    count += engine.trap_mut().take_count(vpn).unwrap_or(0);
                }
                observations.push(ColdObservation { vpn, count });
            }
            let plan = plan_correction(observations, threshold, self.config.sampling_period_ns);
            correction_rate_before = plan.rate_before;
            correction_rate_after = plan.rate_after;
            for vpn in plan.promote {
                if self.partial_children.contains_key(&vpn) {
                    self.promote_partial_child(engine, vpn);
                    promoted += 1;
                } else if self.promote(engine, vpn) {
                    promoted += 1;
                }
            }
        }

        // 3. §3.4 classification of the sampled pages.
        let budget = self.sampled_fraction_actual * threshold;
        let result = classify(estimates, budget);
        let mut demoted = 0u32;
        for c in &result.cold {
            match self.demote(engine, c.vpn) {
                Ok(()) => demoted += 1,
                Err(MemError::OutOfMemory { .. }) => {
                    self.stats.demote_oom += 1;
                    // Slow tier full: the page stays hot.
                    engine
                        .collapse_huge(c.vpn)
                        .expect("sampled page must collapse");
                }
                Err(e) => panic!("unexpected demotion failure: {e}"),
            }
        }
        for c in &result.hot {
            let sp = sample
                .iter()
                .find(|s| s.vpn == c.vpn)
                .expect("sampled page tracked");
            if self.try_split_place(engine, sp) {
                continue;
            }
            engine
                .collapse_huge(c.vpn)
                .expect("sampled page must collapse");
        }

        // 4. Period record. The slow-memory access rate is what the paper's
        // Figure 3 plots: BadgerTrap faults to slow pages under fault
        // emulation (or direct slow-tier accesses in Direct mode) — the
        // engine's slow series records exactly that.
        let slow_faults = engine.slow_series().total();
        let observed = (slow_faults - self.last_slow_faults) as f64
            / (self.config.sampling_period_ns as f64 / 1e9);
        self.last_slow_faults = slow_faults;
        let breakdown = engine.footprint_breakdown();
        self.history.push(PeriodRecord {
            at_ns: engine.now_ns(),
            breakdown,
            demoted_rate: result.cold_rate,
            slow_rate_observed: observed,
            demoted,
            promoted,
            correction_rate_before,
            correction_rate_after,
        });
        self.stats.periods += 1;
        self.stats.pages_demoted += demoted as u64;
        self.stats.pages_promoted += promoted as u64;
    }

    /// §6 extension: if `sp` is a hot page with a small hot footprint,
    /// keep its accessed children in fast memory and move the
    /// never-accessed children to slow memory, leaving the page split.
    /// Returns true if the page was split-placed.
    fn try_split_place(&mut self, engine: &mut Engine, sp: &SampledPage) -> bool {
        if !self.config.split_placement_enabled {
            return false;
        }
        let cold_children = PAGES_PER_HUGE - sp.accessed_set.len();
        if cold_children < self.config.split_placement_min_cold_children {
            return false;
        }
        let accessed: std::collections::HashSet<Vpn> = sp.accessed_set.iter().copied().collect();
        let mut placed = 0;
        for i in 0..PAGES_PER_HUGE as u64 {
            let child = sp.vpn.offset(i);
            if accessed.contains(&child) {
                continue;
            }
            if engine.migrate_page(child, Tier::Slow).is_err() {
                continue; // slow tier full: child stays fast
            }
            engine.poison_page(child, PageSize::Small4K);
            self.partial_children.insert(child, sp.vpn);
            placed += 1;
        }
        if placed == 0 {
            // Nothing moved (e.g. slow tier full): restore the huge page.
            engine
                .collapse_huge(sp.vpn)
                .expect("sampled page must collapse");
            return false;
        }
        self.stats.pages_split_placed += 1;
        self.stats.split_children_demoted += placed;
        true
    }

    /// Brings one split-placed cold child back to fast memory (correction
    /// decided it became hot).
    fn promote_partial_child(&mut self, engine: &mut Engine, child: Vpn) {
        engine.unpoison_page(child);
        if engine.migrate_page(child, Tier::Fast).is_err() {
            // Fast tier full: re-arm monitoring and keep it cold.
            engine.poison_page(child, PageSize::Small4K);
            self.stats.promote_oom += 1;
            return;
        }
        self.partial_children.remove(&child);
    }

    /// Demotes a (currently split) sampled page to slow memory and starts
    /// its cold monitoring.
    fn demote(&mut self, engine: &mut Engine, vpn: Vpn) -> Result<(), MemError> {
        engine.migrate_split_huge(vpn, Tier::Slow)?;
        for i in 0..PAGES_PER_HUGE as u64 {
            engine.poison_page(vpn.offset(i), PageSize::Small4K);
        }
        self.cold.insert(vpn, ColdPage { split: true });
        Ok(())
    }

    /// Promotes a cold page back to fast memory (§3.5). Returns false if
    /// the fast tier had no room.
    fn promote(&mut self, engine: &mut Engine, vpn: Vpn) -> bool {
        let cp = *self.cold.get(&vpn).expect("promoting untracked page");
        let result = if cp.split {
            for i in 0..PAGES_PER_HUGE as u64 {
                engine.unpoison_page(vpn.offset(i));
            }
            engine.migrate_split_huge(vpn, Tier::Fast).map(|()| {
                engine
                    .collapse_huge(vpn)
                    .expect("promoted page must collapse");
            })
        } else {
            engine.unpoison_page(vpn);
            engine.migrate_page(vpn, Tier::Fast)
        };
        match result {
            Ok(()) => {
                self.cold.remove(&vpn);
                self.carry_counts.remove(&vpn);
                true
            }
            Err(MemError::OutOfMemory { .. }) => {
                // Re-poison so monitoring continues; the page stays cold.
                if cp.split {
                    for i in 0..PAGES_PER_HUGE as u64 {
                        engine.poison_page(vpn.offset(i), PageSize::Small4K);
                    }
                } else {
                    engine.poison_page(vpn, PageSize::Huge2M);
                }
                self.stats.promote_oom += 1;
                false
            }
            Err(e) => panic!("unexpected promotion failure: {e}"),
        }
    }
}

impl PolicyHook for Daemon {
    fn next_due_ns(&self) -> u64 {
        self.next_due_ns
    }

    fn tick(&mut self, engine: &mut Engine) {
        match self.phase {
            Phase::Split => {
                self.split_phase(engine);
                self.phase = Phase::Poison;
            }
            Phase::Poison => {
                self.poison_phase(engine);
                self.phase = Phase::Classify;
            }
            Phase::Classify => {
                self.classify_phase(engine);
                self.phase = Phase::Split;
            }
        }
        self.next_due_ns += self.config.scan_interval_ns();
    }
}

thermo_util::json_struct!(PeriodRecord {
    at_ns,
    breakdown,
    demoted_rate,
    slow_rate_observed,
    demoted,
    promoted,
    correction_rate_before,
    correction_rate_after,
});

thermo_util::json_struct!(DaemonStats {
    periods,
    pages_sampled,
    pages_demoted,
    pages_promoted,
    demote_oom,
    promote_oom,
    pages_split_placed,
    split_children_demoted,
});

#[cfg(test)]
mod tests {
    use super::*;
    use thermo_mem::VirtAddr;
    use thermo_sim::{run_for, Access, SimConfig, Workload};

    /// A workload with one blazing-hot huge page and N idle ones.
    struct OneHot {
        base: VirtAddr,
        n_huge: u64,
        i: u64,
    }

    impl Workload for OneHot {
        fn name(&self) -> &str {
            "onehot"
        }

        fn init(&mut self, engine: &mut Engine) {
            self.base = engine.mmap(self.n_huge * (2 << 20), true, true, false, "heap");
            for p in 0..self.n_huge {
                engine.access(self.base + p * (2 << 20), true);
            }
        }

        fn next_op(&mut self, _now: u64, acc: &mut Vec<Access>) -> Option<u64> {
            // Hammer page 0 at fine grain.
            acc.push(Access::read(self.base + (self.i * 64) % (2 << 20)));
            self.i += 1;
            Some(2_000)
        }
    }

    fn fast_config() -> ThermostatConfig {
        ThermostatConfig {
            sampling_period_ns: 300_000_000, // 100ms scans for test speed
            sample_fraction: 0.5,            // sample aggressively in tests
            // Tiny test workloads have low absolute access rates; a tight
            // slowdown target keeps their hot pages clearly above budget.
            tolerable_slowdown_pct: 0.5,
            ..ThermostatConfig::paper_defaults()
        }
    }

    fn engine() -> Engine {
        let mut cfg = SimConfig::paper_defaults(256 << 20, 256 << 20);
        // Aggressive OS-noise flushing so the degenerate one-page test
        // workloads still exhibit TLB misses (real workloads get this from
        // capacity pressure instead).
        cfg.tlb_flush_period_ns = Some(100_000);
        Engine::new(cfg)
    }

    #[test]
    fn daemon_demotes_idle_pages_not_the_hot_one() {
        let mut e = engine();
        let mut w = OneHot {
            base: VirtAddr(0),
            n_huge: 16,
            i: 0,
        };
        w.init(&mut e);
        let mut d = Daemon::new(fast_config());
        run_for(&mut e, &mut w, &mut d, 5_000_000_000);
        assert!(d.stats().periods >= 3, "daemon must have completed periods");
        assert!(
            d.cold_pages() >= 8,
            "idle pages must be demoted, got {}",
            d.cold_pages()
        );
        // The hot page stays in fast memory.
        assert_eq!(e.tier_of_vpn(w.base.vpn()), Some(Tier::Fast));
        // Demoted pages ended up consolidated as huge pages in slow tier.
        let fb = e.footprint_breakdown();
        assert!(fb.huge_slow > 0);
    }

    #[test]
    fn cold_pages_stay_monitored_and_counted() {
        let mut e = engine();
        let mut w = OneHot {
            base: VirtAddr(0),
            n_huge: 8,
            i: 0,
        };
        w.init(&mut e);
        let mut d = Daemon::new(fast_config());
        run_for(&mut e, &mut w, &mut d, 4_000_000_000);
        let cold = d.cold_pages();
        assert!(cold > 0);
        // Every tracked cold page is either huge-poisoned or child-poisoned.
        for &vpn in d.cold.keys() {
            let poisoned = e.trap().is_poisoned(vpn) || e.trap().is_poisoned(vpn.offset(0));
            assert!(poisoned, "cold page {vpn} must be monitored");
        }
    }

    /// A workload whose hot set migrates: phase 1 hammers page A, phase 2
    /// hammers page B (previously idle).
    struct PhaseShift {
        base: VirtAddr,
        n_huge: u64,
        i: u64,
        shift_at_ns: u64,
    }

    impl Workload for PhaseShift {
        fn name(&self) -> &str {
            "phaseshift"
        }

        fn init(&mut self, engine: &mut Engine) {
            self.base = engine.mmap(self.n_huge * (2 << 20), true, true, false, "heap");
            for p in 0..self.n_huge {
                engine.access(self.base + p * (2 << 20), true);
            }
        }

        fn next_op(&mut self, now: u64, acc: &mut Vec<Access>) -> Option<u64> {
            let page = if now < self.shift_at_ns { 0 } else { 1 };
            acc.push(Access::read(
                self.base + page * (2 << 20) + (self.i * 64) % (2 << 20),
            ));
            self.i += 1;
            Some(2_000)
        }
    }

    #[test]
    fn correction_promotes_page_that_becomes_hot() {
        let mut e = engine();
        let mut w = PhaseShift {
            base: VirtAddr(0),
            n_huge: 8,
            i: 0,
            shift_at_ns: 3_000_000_000,
        };
        w.init(&mut e);
        let mut d = Daemon::new(fast_config());
        run_for(&mut e, &mut w, &mut d, 8_000_000_000);
        // Page 1 was idle in phase 1 (likely demoted) but must be back in
        // fast memory by the end.
        let page1 = (w.base + (2 << 20)).vpn();
        assert_eq!(
            e.tier_of_vpn(page1),
            Some(Tier::Fast),
            "hot page must be promoted back"
        );
        assert!(
            d.stats().pages_promoted > 0,
            "correction must have promoted pages"
        );
    }

    #[test]
    fn runtime_slowdown_knob() {
        let mut d = Daemon::new(fast_config());
        d.set_tolerable_slowdown_pct(6.0);
        assert!((d.config().target_slow_access_rate() - 60_000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "slowdown")]
    fn bad_runtime_knob_panics() {
        let mut d = Daemon::new(fast_config());
        d.set_tolerable_slowdown_pct(-1.0);
    }

    #[test]
    fn split_placement_moves_cold_children_of_hot_pages() {
        // One huge page where only 8 of 512 children are ever touched:
        // classic small-hot-footprint page. With split placement the cold
        // 504 children end up in slow memory while the page stays usable.
        struct SparseHot {
            base: VirtAddr,
            i: u64,
        }
        impl Workload for SparseHot {
            fn name(&self) -> &str {
                "sparsehot"
            }
            fn init(&mut self, engine: &mut Engine) {
                self.base = engine.mmap(4 << 20, true, true, false, "heap");
                engine.access(self.base, true);
                engine.access(self.base + (2 << 20), true);
            }
            fn next_op(&mut self, _now: u64, acc: &mut Vec<Access>) -> Option<u64> {
                // Hammer 8 children of huge page 0 hard.
                let child = (self.i % 8) * 4096;
                acc.push(Access::read(self.base + child + (self.i * 64) % 4096));
                self.i += 1;
                Some(1_000)
            }
        }
        let mut e = engine();
        let mut w = SparseHot {
            base: VirtAddr(0),
            i: 0,
        };
        w.init(&mut e);
        let mut cfg = fast_config();
        cfg.split_placement_enabled = true;
        cfg.sample_fraction = 1.0; // always sample both pages
        let mut d = Daemon::new(cfg);
        run_for(&mut e, &mut w, &mut d, 3_000_000_000);
        assert!(
            d.stats().pages_split_placed > 0,
            "sparse-hot page must be split-placed"
        );
        assert!(
            d.partial_children() > 400,
            "most children go cold: {}",
            d.partial_children()
        );
        // The hot children stayed in fast memory.
        assert_eq!(e.tier_of_vpn(w.base.vpn()), Some(Tier::Fast));
        // And cold children really are in the slow tier.
        let cold_child = w.base.vpn().offset(300);
        assert_eq!(e.tier_of_vpn(cold_child), Some(Tier::Slow));
    }

    #[test]
    fn split_placement_off_by_default_keeps_pages_whole() {
        let mut e = engine();
        let mut w = OneHot {
            base: VirtAddr(0),
            n_huge: 8,
            i: 0,
        };
        w.init(&mut e);
        let mut d = Daemon::new(fast_config());
        run_for(&mut e, &mut w, &mut d, 2_000_000_000);
        assert_eq!(d.partial_children(), 0);
        assert_eq!(d.stats().pages_split_placed, 0);
    }

    #[test]
    fn history_records_periods() {
        let mut e = engine();
        let mut w = OneHot {
            base: VirtAddr(0),
            n_huge: 4,
            i: 0,
        };
        w.init(&mut e);
        let mut d = Daemon::new(fast_config());
        run_for(&mut e, &mut w, &mut d, 3_000_000_000);
        assert_eq!(d.history().len() as u64, d.stats().periods);
        for r in d.history() {
            assert!(r.breakdown.total() > 0);
        }
    }
}

//! Workload registry: build any of the six paper applications by id.

use crate::aerospike::Aerospike;
use crate::analytics::Analytics;
use crate::cassandra::Cassandra;
use crate::common::AppConfig;
use crate::redis::Redis;
use crate::tpcc::Tpcc;
use crate::websearch::WebSearch;
use std::fmt;
use std::str::FromStr;
use thermo_sim::Workload;

/// The paper's six applications (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AppId {
    /// Aerospike NoSQL store (YCSB Zipfian).
    Aerospike,
    /// Cassandra wide-column store (YCSB Zipfian + Memtable growth).
    Cassandra,
    /// Cloudsuite in-memory analytics (Spark collaborative filtering).
    InMemoryAnalytics,
    /// TPCC on MySQL (OLTP-Bench).
    MysqlTpcc,
    /// Redis (hotspot distribution).
    Redis,
    /// Cloudsuite web search (Apache Solr).
    WebSearch,
}

impl AppId {
    /// All applications in the paper's presentation order.
    pub const ALL: [AppId; 6] = [
        AppId::Aerospike,
        AppId::Cassandra,
        AppId::InMemoryAnalytics,
        AppId::MysqlTpcc,
        AppId::Redis,
        AppId::WebSearch,
    ];

    /// Builds the workload generator for this application.
    pub fn build(self, cfg: AppConfig) -> Box<dyn Workload> {
        match self {
            AppId::Aerospike => Box::new(Aerospike::new(cfg)),
            AppId::Cassandra => Box::new(Cassandra::new(cfg)),
            AppId::InMemoryAnalytics => Box::new(Analytics::new(cfg)),
            AppId::MysqlTpcc => Box::new(Tpcc::new(cfg)),
            AppId::Redis => Box::new(Redis::new(cfg)),
            AppId::WebSearch => Box::new(WebSearch::new(cfg)),
        }
    }

    /// Paper Table 2 resident set size, bytes (unscaled).
    pub fn paper_rss_bytes(self) -> u64 {
        match self {
            AppId::Aerospike => 12_300_000_000,
            AppId::Cassandra => 8_000_000_000,
            AppId::InMemoryAnalytics => 6_200_000_000,
            AppId::MysqlTpcc => 6_000_000_000,
            AppId::Redis => 17_200_000_000,
            AppId::WebSearch => 2_280_000_000,
        }
    }

    /// Paper Table 2 file-mapped bytes (unscaled).
    pub fn paper_file_bytes(self) -> u64 {
        match self {
            AppId::Aerospike => 5_000_000,
            AppId::Cassandra => 4_000_000_000,
            AppId::InMemoryAnalytics => 1_000_000,
            AppId::MysqlTpcc => 3_500_000_000,
            AppId::Redis => 1_000_000,
            AppId::WebSearch => 86_000_000,
        }
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AppId::Aerospike => "aerospike",
            AppId::Cassandra => "cassandra",
            AppId::InMemoryAnalytics => "in-memory-analytics",
            AppId::MysqlTpcc => "mysql-tpcc",
            AppId::Redis => "redis",
            AppId::WebSearch => "web-search",
        };
        f.pad(s)
    }
}

/// Error for unknown application names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAppError {
    name: String,
}

impl fmt::Display for ParseAppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown application '{}' (expected one of: ", self.name)?;
        for (i, a) in AppId::ALL.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

impl std::error::Error for ParseAppError {}

impl FromStr for AppId {
    type Err = ParseAppError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "aerospike" => Ok(AppId::Aerospike),
            "cassandra" => Ok(AppId::Cassandra),
            "in-memory-analytics" | "analytics" | "in-mem-analytics" => {
                Ok(AppId::InMemoryAnalytics)
            }
            "mysql-tpcc" | "tpcc" | "mysql" => Ok(AppId::MysqlTpcc),
            "redis" => Ok(AppId::Redis),
            "web-search" | "websearch" | "search" => Ok(AppId::WebSearch),
            other => Err(ParseAppError {
                name: other.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_display_fromstr() {
        for app in AppId::ALL {
            let parsed: AppId = app.to_string().parse().unwrap();
            assert_eq!(parsed, app);
        }
    }

    #[test]
    fn aliases_parse() {
        assert_eq!("tpcc".parse::<AppId>().unwrap(), AppId::MysqlTpcc);
        assert_eq!(
            "analytics".parse::<AppId>().unwrap(),
            AppId::InMemoryAnalytics
        );
        assert_eq!("websearch".parse::<AppId>().unwrap(), AppId::WebSearch);
    }

    #[test]
    fn unknown_app_error_lists_options() {
        let err = "mongodb".parse::<AppId>().unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("mongodb") && msg.contains("redis"));
    }

    #[test]
    fn builds_all_apps() {
        for app in AppId::ALL {
            let w = app.build(AppConfig::default());
            assert_eq!(w.name(), app.to_string());
        }
    }

    #[test]
    fn table2_footprints_ordered_like_paper() {
        // Redis has the largest RSS, web-search the smallest.
        assert!(AppId::Redis.paper_rss_bytes() > AppId::Aerospike.paper_rss_bytes());
        assert!(AppId::WebSearch.paper_rss_bytes() < AppId::MysqlTpcc.paper_rss_bytes());
        // Cassandra and MySQL carry multi-GB file mappings.
        assert!(AppId::Cassandra.paper_file_bytes() > 1_000_000_000);
        assert!(AppId::MysqlTpcc.paper_file_bytes() > 1_000_000_000);
    }
}

//! Workload registry: the six paper applications as *data*.
//!
//! Each application is one [`AppSpec`] row in [`SPECS`] — name, parse
//! aliases, Table-2 footprint, and a build function — and every
//! [`AppId`] method routes through that table. The rows double as the
//! pre-baked scenario specs consumed by `thermo-scenario`: a scenario
//! tenant naming an application compiles through [`AppId::build`], so
//! the declarative layer and the hand-written binaries construct
//! byte-identical workload streams from one source of truth.

use crate::aerospike::Aerospike;
use crate::analytics::Analytics;
use crate::cassandra::Cassandra;
use crate::common::AppConfig;
use crate::redis::Redis;
use crate::tpcc::Tpcc;
use crate::websearch::WebSearch;
use std::fmt;
use std::str::FromStr;
use thermo_sim::Workload;

/// The paper's six applications (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AppId {
    /// Aerospike NoSQL store (YCSB Zipfian).
    Aerospike,
    /// Cassandra wide-column store (YCSB Zipfian + Memtable growth).
    Cassandra,
    /// Cloudsuite in-memory analytics (Spark collaborative filtering).
    InMemoryAnalytics,
    /// TPCC on MySQL (OLTP-Bench).
    MysqlTpcc,
    /// Redis (hotspot distribution).
    Redis,
    /// Cloudsuite web search (Apache Solr).
    WebSearch,
}

/// One registry row: everything the workspace knows about an application,
/// declaratively. `thermo-scenario` treats these rows as the pre-baked
/// scenario specs for the paper's Table-2 apps.
pub struct AppSpec {
    /// The application this row describes.
    pub id: AppId,
    /// Canonical name (CLI argument, report row label, VMA tag prefix).
    pub name: &'static str,
    /// Extra accepted spellings for [`FromStr`].
    pub aliases: &'static [&'static str],
    /// Paper Table 2 resident set size, bytes (unscaled).
    pub paper_rss_bytes: u64,
    /// Paper Table 2 file-mapped bytes (unscaled).
    pub paper_file_bytes: u64,
    /// Builds the workload generator.
    pub build: fn(AppConfig) -> Box<dyn Workload>,
}

/// The registry table, in the paper's presentation order (same order as
/// [`AppId::ALL`]).
pub const SPECS: [AppSpec; 6] = [
    AppSpec {
        id: AppId::Aerospike,
        name: "aerospike",
        aliases: &[],
        paper_rss_bytes: 12_300_000_000,
        paper_file_bytes: 5_000_000,
        build: |cfg| Box::new(Aerospike::new(cfg)),
    },
    AppSpec {
        id: AppId::Cassandra,
        name: "cassandra",
        aliases: &[],
        paper_rss_bytes: 8_000_000_000,
        paper_file_bytes: 4_000_000_000,
        build: |cfg| Box::new(Cassandra::new(cfg)),
    },
    AppSpec {
        id: AppId::InMemoryAnalytics,
        name: "in-memory-analytics",
        aliases: &["analytics", "in-mem-analytics"],
        paper_rss_bytes: 6_200_000_000,
        paper_file_bytes: 1_000_000,
        build: |cfg| Box::new(Analytics::new(cfg)),
    },
    AppSpec {
        id: AppId::MysqlTpcc,
        name: "mysql-tpcc",
        aliases: &["tpcc", "mysql"],
        paper_rss_bytes: 6_000_000_000,
        paper_file_bytes: 3_500_000_000,
        build: |cfg| Box::new(Tpcc::new(cfg)),
    },
    AppSpec {
        id: AppId::Redis,
        name: "redis",
        aliases: &[],
        paper_rss_bytes: 17_200_000_000,
        paper_file_bytes: 1_000_000,
        build: |cfg| Box::new(Redis::new(cfg)),
    },
    AppSpec {
        id: AppId::WebSearch,
        name: "web-search",
        aliases: &["websearch", "search"],
        paper_rss_bytes: 2_280_000_000,
        paper_file_bytes: 86_000_000,
        build: |cfg| Box::new(WebSearch::new(cfg)),
    },
];

impl AppId {
    /// All applications in the paper's presentation order.
    pub const ALL: [AppId; 6] = [
        AppId::Aerospike,
        AppId::Cassandra,
        AppId::InMemoryAnalytics,
        AppId::MysqlTpcc,
        AppId::Redis,
        AppId::WebSearch,
    ];

    /// This application's registry row.
    pub fn spec(self) -> &'static AppSpec {
        // SPECS is ordered like ALL; indexing by discriminant position
        // keeps the lookup O(1) and the test below pins the invariant.
        &SPECS[self as usize]
    }

    /// Builds the workload generator for this application.
    pub fn build(self, cfg: AppConfig) -> Box<dyn Workload> {
        (self.spec().build)(cfg)
    }

    /// Paper Table 2 resident set size, bytes (unscaled).
    pub fn paper_rss_bytes(self) -> u64 {
        self.spec().paper_rss_bytes
    }

    /// Paper Table 2 file-mapped bytes (unscaled).
    pub fn paper_file_bytes(self) -> u64 {
        self.spec().paper_file_bytes
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(self.spec().name)
    }
}

/// Error for unknown application names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAppError {
    name: String,
}

impl fmt::Display for ParseAppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown application '{}' (expected one of: ", self.name)?;
        for (i, a) in AppId::ALL.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

impl std::error::Error for ParseAppError {}

impl FromStr for AppId {
    type Err = ParseAppError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        SPECS
            .iter()
            .find(|spec| spec.name == lower || spec.aliases.contains(&lower.as_str()))
            .map(|spec| spec.id)
            .ok_or(ParseAppError { name: lower })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_cover_all_in_order() {
        assert_eq!(SPECS.len(), AppId::ALL.len());
        for (i, app) in AppId::ALL.iter().enumerate() {
            assert_eq!(SPECS[i].id, *app, "SPECS must stay in ALL order");
            assert_eq!(app.spec().id, *app);
        }
    }

    #[test]
    fn roundtrip_display_fromstr() {
        for app in AppId::ALL {
            let parsed: AppId = app.to_string().parse().unwrap();
            assert_eq!(parsed, app);
        }
    }

    #[test]
    fn aliases_parse() {
        assert_eq!("tpcc".parse::<AppId>().unwrap(), AppId::MysqlTpcc);
        assert_eq!(
            "analytics".parse::<AppId>().unwrap(),
            AppId::InMemoryAnalytics
        );
        assert_eq!("websearch".parse::<AppId>().unwrap(), AppId::WebSearch);
    }

    #[test]
    fn unknown_app_error_lists_options() {
        let err = "mongodb".parse::<AppId>().unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("mongodb") && msg.contains("redis"));
    }

    #[test]
    fn builds_all_apps() {
        for app in AppId::ALL {
            let w = app.build(AppConfig::default());
            assert_eq!(w.name(), app.to_string());
        }
    }

    #[test]
    fn table2_footprints_ordered_like_paper() {
        // Redis has the largest RSS, web-search the smallest.
        assert!(AppId::Redis.paper_rss_bytes() > AppId::Aerospike.paper_rss_bytes());
        assert!(AppId::WebSearch.paper_rss_bytes() < AppId::MysqlTpcc.paper_rss_bytes());
        // Cassandra and MySQL carry multi-GB file mappings.
        assert!(AppId::Cassandra.paper_file_bytes() > 1_000_000_000);
        assert!(AppId::MysqlTpcc.paper_file_bytes() > 1_000_000_000);
    }
}

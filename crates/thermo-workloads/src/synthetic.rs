//! A fully configurable synthetic workload for tests, examples and
//! calibration studies: a list of regions, each with its own size, access
//! weight, key distribution, operation shape and read/write mix.
//!
//! Where the six named generators reproduce specific applications from the
//! paper, [`Synthetic`] lets a user compose *any* footprint shape — e.g.
//! "64MB scorching + 256MB Zipfian + 512MB frozen archive" — and study how
//! Thermostat treats it.

use crate::common::Region;
use crate::dist::{KeyDist, ScrambledZipfian, UniformDist};
use thermo_sim::{Access, Engine, FootprintInfo, Workload};
use thermo_util::rng::SmallRng;
use thermo_util::rng::{Rng, SeedableRng};

/// Access pattern within one region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// Uniform random lines.
    Uniform,
    /// Scrambled-Zipfian lines with the given skew.
    Zipfian {
        /// Skew parameter in (0, 1).
        theta: f64,
    },
    /// Sequential cursor (streaming scan); wraps around.
    Sequential,
    /// Touched only during the load phase, never afterwards.
    Frozen,
}

/// Specification of one region.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionSpec {
    /// Region name (VMA tag).
    pub name: String,
    /// Size in bytes (rounded up to 4KB by the mapper).
    pub bytes: u64,
    /// Relative share of operations targeting this region (0 = never,
    /// except via [`Pattern::Frozen`] warm-up).
    pub weight: u32,
    /// Access pattern.
    pub pattern: Pattern,
    /// Lines touched per operation hitting this region.
    pub lines_per_op: u32,
    /// Percentage of operations that write (0..=100).
    pub write_pct: u8,
    /// Map as THP-eligible.
    pub thp: bool,
    /// Map as file-backed (Table 2 accounting).
    pub file_backed: bool,
}

impl RegionSpec {
    /// A convenient anonymous THP region.
    pub fn anon(name: &str, bytes: u64, weight: u32, pattern: Pattern) -> Self {
        Self {
            name: name.to_string(),
            bytes,
            weight,
            pattern,
            lines_per_op: 1,
            write_pct: 10,
            thp: true,
            file_backed: false,
        }
    }
}

/// The configurable workload.
#[derive(Debug)]
pub struct Synthetic {
    specs: Vec<RegionSpec>,
    compute_ns: u64,
    rng: SmallRng,
    regions: Vec<Region>,
    dists: Vec<Option<ScrambledZipfian>>,
    uniform: Vec<Option<UniformDist>>,
    cursors: Vec<u64>,
    total_weight: u32,
}

impl Synthetic {
    /// Builds a synthetic workload from region specs.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty or all weights are zero.
    pub fn new(specs: Vec<RegionSpec>, compute_ns: u64, seed: u64) -> Self {
        assert!(!specs.is_empty(), "need at least one region");
        let total_weight: u32 = specs.iter().map(|s| s.weight).sum();
        assert!(
            total_weight > 0,
            "at least one region needs a positive weight"
        );
        Self {
            rng: SmallRng::seed_from_u64(seed ^ 0x5e17),
            dists: Vec::new(),
            uniform: Vec::new(),
            cursors: vec![0; specs.len()],
            regions: Vec::new(),
            total_weight,
            specs,
            compute_ns,
        }
    }

    /// The mapped region handles (available after `init`).
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }
}

impl Workload for Synthetic {
    fn name(&self) -> &str {
        "synthetic"
    }

    fn init(&mut self, engine: &mut Engine) {
        for spec in &self.specs {
            let region = Region::map(engine, spec.bytes, spec.thp, spec.file_backed, &spec.name);
            region.warm(engine);
            let lines = region.bytes / 64;
            match spec.pattern {
                Pattern::Zipfian { theta } => {
                    self.dists
                        .push(Some(ScrambledZipfian::with_theta(lines, theta)));
                    self.uniform.push(None);
                }
                Pattern::Uniform => {
                    self.dists.push(None);
                    self.uniform.push(Some(UniformDist::new(lines)));
                }
                Pattern::Sequential | Pattern::Frozen => {
                    self.dists.push(None);
                    self.uniform.push(None);
                }
            }
            self.regions.push(region);
        }
    }

    fn next_op(&mut self, _now_ns: u64, accesses: &mut Vec<Access>) -> Option<u64> {
        // Pick a region by weight.
        let mut pick = self.rng.gen_range(0..self.total_weight);
        let mut idx = 0;
        for (i, s) in self.specs.iter().enumerate() {
            if pick < s.weight {
                idx = i;
                break;
            }
            pick -= s.weight;
        }
        let spec = &self.specs[idx];
        let region = self.regions[idx];
        let write = self.rng.gen_range(0..100u8) < spec.write_pct;
        let line = match spec.pattern {
            Pattern::Uniform => self.uniform[idx]
                .as_ref()
                .expect("uniform dist")
                .sample(&mut self.rng),
            Pattern::Zipfian { .. } => self.dists[idx]
                .as_ref()
                .expect("zipf dist")
                .sample(&mut self.rng),
            Pattern::Sequential => {
                let c = self.cursors[idx];
                self.cursors[idx] = thermo_util::fastdiv::wrap_add(c, 1, region.bytes / 64);
                c
            }
            Pattern::Frozen => {
                // Frozen regions only appear with weight 0; a nonzero
                // weight behaves like uniform to stay total.
                self.rng.gen_range(0..region.bytes / 64)
            }
        };
        for l in 0..spec.lines_per_op as u64 {
            let va = region.at((line + l) * 64);
            accesses.push(if write {
                Access::write(va)
            } else {
                Access::read(va)
            });
        }
        Some(self.compute_ns)
    }

    fn footprint(&self) -> FootprintInfo {
        FootprintInfo {
            anon_bytes: self
                .specs
                .iter()
                .filter(|s| !s.file_backed)
                .map(|s| s.bytes)
                .sum(),
            file_bytes: self
                .specs
                .iter()
                .filter(|s| s.file_backed)
                .map(|s| s.bytes)
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermo_sim::{run_ops, NoPolicy, SimConfig};

    fn engine() -> Engine {
        Engine::new(SimConfig::paper_defaults(128 << 20, 128 << 20))
    }

    fn three_region() -> Synthetic {
        Synthetic::new(
            vec![
                RegionSpec::anon("hot", 4 << 20, 90, Pattern::Uniform),
                RegionSpec::anon("warm", 8 << 20, 10, Pattern::Zipfian { theta: 0.9 }),
                RegionSpec::anon("frozen", 16 << 20, 0, Pattern::Frozen),
            ],
            500,
            1,
        )
    }

    #[test]
    fn maps_and_warms_all_regions() {
        let mut e = engine();
        let mut w = three_region();
        w.init(&mut e);
        assert_eq!(e.rss_bytes(), 28 << 20);
        assert_eq!(w.regions().len(), 3);
    }

    #[test]
    fn frozen_region_gets_no_steady_state_traffic() {
        let mut cfg = SimConfig::paper_defaults(128 << 20, 128 << 20);
        cfg.track_true_access = true;
        let mut e = Engine::new(cfg);
        let mut w = three_region();
        w.init(&mut e);
        e.reset_true_access();
        run_ops(&mut e, &mut w, &mut NoPolicy, 20_000);
        let frozen = w.regions()[2];
        let touched = e.true_access_counts().keys().any(|v| {
            v.addr() >= frozen.base && v.addr() < thermo_mem::VirtAddr(frozen.base.0 + frozen.bytes)
        });
        assert!(!touched, "weight-0 frozen region must stay untouched");
    }

    #[test]
    fn weights_steer_traffic() {
        let mut cfg = SimConfig::paper_defaults(128 << 20, 128 << 20);
        cfg.track_true_access = true;
        let mut e = Engine::new(cfg);
        let mut w = three_region();
        w.init(&mut e);
        e.reset_true_access();
        run_ops(&mut e, &mut w, &mut NoPolicy, 20_000);
        let counts = e.true_access_counts();
        let sum_in = |r: Region| -> u64 {
            counts
                .iter()
                .filter(|(v, _)| {
                    v.addr() >= r.base && v.addr() < thermo_mem::VirtAddr(r.base.0 + r.bytes)
                })
                .map(|(_, c)| *c)
                .sum()
        };
        let hot = sum_in(w.regions()[0]);
        let warm = sum_in(w.regions()[1]);
        assert!(
            hot > 5 * warm,
            "90:10 weights must show in traffic ({hot} vs {warm})"
        );
    }

    #[test]
    fn sequential_pattern_advances_cursor() {
        let mut e = engine();
        let mut w = Synthetic::new(
            vec![RegionSpec::anon("scan", 2 << 20, 1, Pattern::Sequential)],
            100,
            2,
        );
        w.init(&mut e);
        let mut acc = Vec::new();
        w.next_op(0, &mut acc).unwrap();
        let first = acc[0].va;
        acc.clear();
        w.next_op(0, &mut acc).unwrap();
        assert_eq!(acc[0].va.0, first.0 + 64, "sequential lines must advance");
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn all_zero_weights_panics() {
        Synthetic::new(
            vec![RegionSpec::anon("x", 1 << 20, 0, Pattern::Frozen)],
            100,
            1,
        );
    }
}

//! Aerospike-like multi-threaded key-value store.
//!
//! Paper configuration (§4.3): ~12.3GB resident, negligible file I/O,
//! YCSB Zipfian key distribution, evaluated at 95:5 (read-heavy) and 5:95
//! (write-heavy) mixes. The Zipfian tail gives Aerospike a modest (~15%)
//! cold fraction at the 3% slowdown target (Figure 7), growing with the
//! tolerable slowdown (Figure 11).

use crate::common::{percent, AppConfig, Region};
use crate::dist::{fnv_mix, KeyDist, ScrambledZipfian};
use thermo_sim::{Access, Engine, FootprintInfo, Workload};
use thermo_util::rng::SeedableRng;
use thermo_util::rng::SmallRng;

/// Paper footprint (Table 2): 12.3GB RSS, 5MB file-mapped.
const PAPER_RSS: u64 = 12_300_000_000;
/// Bytes per record slot.
const SLOT_BYTES: u64 = 512;
/// Bytes per primary-index entry (Aerospike's index is 64B per record).
const INDEX_ENTRY: u64 = 64;

/// The Aerospike-like generator.
#[derive(Debug)]
pub struct Aerospike {
    cfg: AppConfig,
    rng: SmallRng,
    data: Option<Region>,
    index: Option<Region>,
    dist: Option<ScrambledZipfian>,
    n_keys: u64,
    compute_ns: u64,
}

impl Aerospike {
    /// Creates the generator with the mix from `cfg.read_pct`.
    pub fn new(cfg: AppConfig) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(cfg.seed ^ 0xae20),
            cfg,
            data: None,
            index: None,
            dist: None,
            n_keys: 0,
            compute_ns: 3_500,
        }
    }
}

impl Workload for Aerospike {
    fn name(&self) -> &str {
        "aerospike"
    }

    fn init(&mut self, engine: &mut Engine) {
        let data_bytes = self.cfg.scaled(PAPER_RSS);
        let n_keys = data_bytes / SLOT_BYTES;
        let index_bytes = (n_keys * INDEX_ENTRY).max(2 << 20);
        let data = Region::map(engine, data_bytes, true, false, "aero-records");
        let index = Region::map(engine, index_bytes, true, false, "aero-index");
        data.warm(engine);
        index.warm(engine);
        self.dist = Some(ScrambledZipfian::new(n_keys));
        self.n_keys = n_keys;
        self.data = Some(data);
        self.index = Some(index);
    }

    fn next_op(&mut self, _now_ns: u64, accesses: &mut Vec<Access>) -> Option<u64> {
        let (data, index, dist) = (
            self.data.expect("init first"),
            self.index.expect("init first"),
            self.dist.as_ref().expect("init first"),
        );
        let key = dist.sample(&mut self.rng);
        let write = !percent(&mut self.rng, self.cfg.read_pct);
        // Primary index lookup (one line), then record body (two lines).
        accesses.push(Access::read(index.slot(fnv_mix(key), INDEX_ENTRY)));
        for l in 0..2 {
            let va = data.slot_line(key, SLOT_BYTES, l);
            accesses.push(if write {
                Access::write(va)
            } else {
                Access::read(va)
            });
        }
        Some(self.compute_ns)
    }

    fn footprint(&self) -> FootprintInfo {
        FootprintInfo {
            anon_bytes: self.cfg.scaled(PAPER_RSS) + self.cfg.scaled(PAPER_RSS) / 8,
            file_bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermo_sim::{run_ops, NoPolicy, SimConfig};

    fn tiny() -> (Engine, Aerospike) {
        let e = Engine::new(SimConfig::paper_defaults(256 << 20, 256 << 20));
        let a = Aerospike::new(AppConfig {
            scale: 512,
            seed: 2,
            read_pct: 95,
        });
        (e, a)
    }

    #[test]
    fn runs_and_is_deterministic() {
        let run = || {
            let (mut e, mut a) = tiny();
            a.init(&mut e);
            let out = run_ops(&mut e, &mut a, &mut NoPolicy, 10_000);
            (out.end_ns, e.stats().accesses)
        };
        let (t, acc) = run();
        assert_eq!(run(), (t, acc));
        assert!(acc > 0);
    }

    #[test]
    fn write_heavy_mix_writes_more() {
        let mix_writes = |read_pct: u8| {
            let mut e = Engine::new(SimConfig::paper_defaults(256 << 20, 256 << 20));
            let mut a = Aerospike::new(AppConfig {
                scale: 512,
                seed: 2,
                read_pct,
            });
            a.init(&mut e);
            let before = e.stats().writes;
            run_ops(&mut e, &mut a, &mut NoPolicy, 10_000);
            e.stats().writes - before
        };
        assert!(mix_writes(5) > 4 * mix_writes(95));
    }

    #[test]
    fn zipf_traffic_has_cold_tail() {
        let mut cfg = SimConfig::paper_defaults(256 << 20, 256 << 20);
        cfg.track_true_access = true;
        let mut e = Engine::new(cfg);
        let mut a = Aerospike::new(AppConfig {
            scale: 512,
            seed: 2,
            read_pct: 95,
        });
        a.init(&mut e);
        e.reset_true_access();
        run_ops(&mut e, &mut a, &mut NoPolicy, 50_000);
        // Some resident pages saw zero traffic in the window.
        let touched = e.true_access_counts().len() as u64;
        let resident_pages = e.rss_bytes() / 4096;
        assert!(
            touched < resident_pages,
            "zipf tail should leave pages untouched"
        );
    }
}

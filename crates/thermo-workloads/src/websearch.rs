//! Web-search (Cloudsuite's Apache Solr).
//!
//! Paper configuration (§4.3): ~2.28GB resident, 86MB file-mapped, 50
//! ops/sec with an 85ms 99th-percentile latency — i.e. query *scoring* is
//! compute-bound, not memory-bound. That compute-dominance gives web
//! search the paper's two distinguishing results: **no measurable benefit
//! from huge pages** (Table 1) and **no 99th-percentile degradation** with
//! ~40% of the index placed in slow memory (Figure 10).
//!
//! The generator models a term-partitioned inverted index: query terms are
//! Zipfian (natural-language term frequency), each term's posting list is
//! a short sequential read, and per-query scoring burns a large fixed
//! compute budget.

use crate::common::{AppConfig, Region};
use crate::dist::{fnv_mix, KeyDist, ZipfianDist};
use thermo_sim::{Access, Engine, FootprintInfo, Workload};
use thermo_util::rng::SmallRng;
use thermo_util::rng::{Rng, SeedableRng};

/// Inverted index + doc store (anon; Solr caches dominate RSS).
const PAPER_INDEX: u64 = 2_000_000_000;
/// Fraction of the index that queries actually exercise: the active
/// posting lists and norms. The rest (stored fields of rarely-fetched
/// documents, deep archive segments) is touched only when the index loads
/// — the ~40% cold mass of Figure 10 and the idle bars of Figure 1.
const ACTIVE_INDEX_FRACTION: f64 = 0.55;
/// Query/result caches — small and hot.
const PAPER_CACHES: u64 = 280_000_000;
/// Segment metadata files.
const PAPER_FILES: u64 = 86_000_000;
/// Bytes per posting-list slot.
const POSTING_SLOT: u64 = 1024;
/// Terms per query.
const TERMS_PER_QUERY: usize = 3;

/// The web-search generator.
#[derive(Debug)]
pub struct WebSearch {
    cfg: AppConfig,
    rng: SmallRng,
    index: Option<Region>,
    caches: Option<Region>,
    files: Option<Region>,
    term_dist: Option<ZipfianDist>,
    /// Precomputed magic for hashing terms across the active index slots
    /// (`% active_slots`, exact).
    slot_mod: Option<thermo_util::fastdiv::FastMod>,
    compute_ns: u64,
}

impl WebSearch {
    /// Creates the generator.
    pub fn new(cfg: AppConfig) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(cfg.seed ^ 0x5ea6),
            cfg,
            index: None,
            caches: None,
            files: None,
            term_dist: None,
            slot_mod: None,
            compute_ns: 40_000,
        }
    }
}

impl Workload for WebSearch {
    fn name(&self) -> &str {
        "web-search"
    }

    fn init(&mut self, engine: &mut Engine) {
        let index = Region::map(
            engine,
            self.cfg.scaled(PAPER_INDEX),
            true,
            false,
            "solr-index",
        );
        let caches = Region::map(
            engine,
            self.cfg.scaled(PAPER_CACHES),
            true,
            false,
            "solr-caches",
        );
        let files = Region::map(
            engine,
            self.cfg.scaled(PAPER_FILES),
            true,
            true,
            "solr-segments",
        );
        index.warm(engine);
        caches.warm(engine);
        files.warm(engine);
        // Natural-language term frequencies over the *active* slice of the
        // index; the archival remainder is loaded but not queried.
        let active_slots = ((index.n_slots(POSTING_SLOT) as f64) * ACTIVE_INDEX_FRACTION) as u64;
        self.term_dist = Some(ZipfianDist::new(active_slots.max(1), 0.8));
        self.slot_mod = Some(thermo_util::fastdiv::FastMod::new(active_slots.max(1)));
        self.index = Some(index);
        self.caches = Some(caches);
        self.files = Some(files);
    }

    fn next_op(&mut self, _now_ns: u64, accesses: &mut Vec<Access>) -> Option<u64> {
        let index = self.index.expect("init first");
        let caches = self.caches.expect("init first");
        let dist = self.term_dist.as_ref().expect("init first");

        let slot_mod = self.slot_mod.expect("init first");
        // Result-cache probe.
        let q: u64 = self.rng.gen();
        accesses.push(Access::read(caches.at(caches.reduce(fnv_mix(q)) & !63)));
        // Posting lists for each query term, hashed across the active
        // slice of the index.
        for _ in 0..TERMS_PER_QUERY {
            let term = dist.sample(&mut self.rng);
            let slot = slot_mod.rem(fnv_mix(term));
            accesses.push(Access::read(index.slot_line(slot, POSTING_SLOT, 0)));
            accesses.push(Access::read(index.slot_line(slot, POSTING_SLOT, 1)));
        }
        // Result-cache fill.
        accesses.push(Access::write(
            caches.at(caches.reduce(fnv_mix(q ^ 0xc0de)) & !63),
        ));
        Some(self.compute_ns)
    }

    fn footprint(&self) -> FootprintInfo {
        FootprintInfo {
            anon_bytes: self.cfg.scaled(PAPER_INDEX) + self.cfg.scaled(PAPER_CACHES),
            file_bytes: self.cfg.scaled(PAPER_FILES),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermo_sim::{run_ops, NoPolicy, SimConfig};

    fn setup() -> (Engine, WebSearch) {
        let e = Engine::new(SimConfig::paper_defaults(256 << 20, 256 << 20));
        let w = WebSearch::new(AppConfig {
            scale: 512,
            seed: 6,
            read_pct: 95,
        });
        (e, w)
    }

    #[test]
    fn compute_dominates_op_time() {
        let (mut e, mut w) = setup();
        w.init(&mut e);
        let t0 = e.now_ns();
        let out = run_ops(&mut e, &mut w, &mut NoPolicy, 2_000);
        let per_op = (e.now_ns() - t0) / out.ops;
        // The 40us scoring budget must dominate the handful of accesses.
        assert!((40_000..70_000).contains(&per_op), "per-op {per_op}ns");
    }

    #[test]
    fn index_tail_is_cold() {
        let mut cfg = SimConfig::paper_defaults(256 << 20, 256 << 20);
        cfg.track_true_access = true;
        let mut e = Engine::new(cfg);
        let mut w = WebSearch::new(AppConfig {
            scale: 512,
            seed: 6,
            read_pct: 95,
        });
        w.init(&mut e);
        e.reset_true_access();
        run_ops(&mut e, &mut w, &mut NoPolicy, 30_000);
        let index = w.index.unwrap();
        let mut per_page: Vec<u64> = e
            .true_access_counts()
            .iter()
            .filter(|(v, _)| {
                v.addr() >= index.base
                    && v.addr() < thermo_mem::VirtAddr(index.base.0 + index.bytes)
            })
            .map(|(_, c)| *c)
            .collect();
        per_page.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = per_page.iter().sum();
        let head: u64 = per_page.iter().take(per_page.len() / 5).sum();
        // Zipfian terms: the hottest 20% of index pages must carry most of
        // the traffic, leaving a long low-rate tail for Thermostat.
        assert!(
            head as f64 / total as f64 > 0.5,
            "index traffic not skewed enough: head fraction {}",
            head as f64 / total as f64
        );
    }

    #[test]
    fn deterministic() {
        let run = || {
            let (mut e, mut w) = setup();
            w.init(&mut e);
            run_ops(&mut e, &mut w, &mut NoPolicy, 1_000);
            (e.now_ns(), e.stats().accesses)
        };
        assert_eq!(run(), run());
    }
}

//! Redis-like single-threaded key-value store.
//!
//! The paper's Redis load (§4.3): ~17.2GB resident, effectively no file
//! I/O, keys accessed with a hotspot distribution where 0.01% of keys
//! account for 90% of the traffic, value sizes following the Facebook
//! memcached distribution (mostly small). Because the hash table spreads
//! keys uniformly over the address space, page hotness mirrors key hotness
//! — which is why the paper can only move ~10% of Redis to slow memory at
//! 3% slowdown (§5, Figure 8).

use crate::common::{percent, AppConfig, Region};
use crate::dist::{fnv_mix, HotspotDist, KeyDist};
use thermo_sim::{Access, Engine, FootprintInfo, Workload};
use thermo_util::rng::SeedableRng;
use thermo_util::rng::SmallRng;

/// Paper footprint (Table 2): 17.2GB RSS, ~1MB file-mapped.
const PAPER_RSS: u64 = 17_200_000_000;
/// Bytes per key slot in the value arena.
const SLOT_BYTES: u64 = 256;
/// Bytes per hash-index entry.
const INDEX_ENTRY: u64 = 16;

/// The Redis-like generator.
#[derive(Debug)]
pub struct Redis {
    cfg: AppConfig,
    rng: SmallRng,
    data: Option<Region>,
    index: Option<Region>,
    dist: Option<HotspotDist>,
    n_keys: u64,
    /// Fixed compute cost per operation (command parsing, event loop), ns.
    compute_ns: u64,
}

impl Redis {
    /// Creates the generator; regions are mapped in
    /// [`Workload::init`].
    pub fn new(cfg: AppConfig) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(cfg.seed ^ 0x5ed1),
            cfg,
            data: None,
            index: None,
            dist: None,
            n_keys: 0,
            compute_ns: 250,
        }
    }

    /// Number of keys in the store (available after `init`).
    pub fn n_keys(&self) -> u64 {
        self.n_keys
    }
}

impl Workload for Redis {
    fn name(&self) -> &str {
        "redis"
    }

    fn init(&mut self, engine: &mut Engine) {
        let data_bytes = self.cfg.scaled(PAPER_RSS);
        let n_keys = data_bytes / SLOT_BYTES;
        let index_bytes = (n_keys * INDEX_ENTRY).max(2 << 20);
        let data = Region::map(engine, data_bytes, true, false, "redis-values");
        let index = Region::map(engine, index_bytes, true, false, "redis-index");
        // Load phase: populate every slot (the paper warms for 600s).
        data.warm(engine);
        index.warm(engine);
        self.dist = Some(HotspotDist::paper_redis(n_keys));
        self.n_keys = n_keys;
        self.data = Some(data);
        self.index = Some(index);
    }

    fn next_op(&mut self, _now_ns: u64, accesses: &mut Vec<Access>) -> Option<u64> {
        let (data, index, dist) = (
            self.data.expect("init first"),
            self.index.expect("init first"),
            self.dist.as_ref().expect("init first"),
        );
        let key = dist.sample(&mut self.rng);
        let write = !percent(&mut self.rng, 90); // 90:10 GET:SET
                                                 // 1. Hash-index probe.
        accesses.push(Access::read(index.slot(fnv_mix(key), INDEX_ENTRY)));
        // 2. Value access: the [12] value-size distribution is dominated by
        //    small values; one cache line carries the common case.
        let va = data.slot_line(key, SLOT_BYTES, 0);
        accesses.push(if write {
            Access::write(va)
        } else {
            Access::read(va)
        });
        Some(self.compute_ns)
    }

    fn footprint(&self) -> FootprintInfo {
        FootprintInfo {
            anon_bytes: self.cfg.scaled(PAPER_RSS) + self.cfg.scaled(PAPER_RSS) / 16,
            file_bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermo_sim::{run_ops, NoPolicy, SimConfig};

    fn tiny_cfg() -> AppConfig {
        AppConfig {
            scale: 512,
            seed: 1,
            read_pct: 95,
        } // ~34MB
    }

    fn engine() -> Engine {
        Engine::new(SimConfig::paper_defaults(256 << 20, 256 << 20))
    }

    #[test]
    fn init_maps_and_warms_footprint() {
        let mut e = engine();
        let mut r = Redis::new(tiny_cfg());
        r.init(&mut e);
        assert!(e.rss_bytes() >= 32 << 20);
        assert_eq!(e.process().file_backed_bytes(), 0, "Redis does no file I/O");
        assert!(r.n_keys() > 100_000);
    }

    #[test]
    fn ops_access_mapped_memory_only() {
        let mut e = engine();
        let mut r = Redis::new(tiny_cfg());
        r.init(&mut e);
        // Would panic with a simulated segfault if any access escaped.
        let out = run_ops(&mut e, &mut r, &mut NoPolicy, 20_000);
        assert_eq!(out.ops, 20_000);
        assert!(out.ops_per_sec() > 0.0);
    }

    #[test]
    fn traffic_is_hotspot_concentrated() {
        let mut cfg = SimConfig::paper_defaults(256 << 20, 256 << 20);
        cfg.track_true_access = true;
        let mut e = Engine::new(cfg);
        let mut r = Redis::new(tiny_cfg());
        r.init(&mut e);
        e.reset_true_access(); // drop warm-up traffic
        run_ops(&mut e, &mut r, &mut NoPolicy, 50_000);
        let counts = e.true_access_counts();
        let mut v: Vec<u64> = counts.values().copied().collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = v.iter().sum();
        let top1pct: u64 = v.iter().take(v.len() / 100 + 1).sum();
        assert!(
            top1pct as f64 / total as f64 > 0.5,
            "top 1% of pages should carry most traffic, got {}",
            top1pct as f64 / total as f64
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut e = engine();
            let mut r = Redis::new(tiny_cfg());
            r.init(&mut e);
            run_ops(&mut e, &mut r, &mut NoPolicy, 5_000);
            (e.now_ns(), e.stats().llc_misses)
        };
        assert_eq!(run(), run());
    }
}

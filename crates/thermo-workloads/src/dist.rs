//! Key-selection distributions.
//!
//! The paper drives its NoSQL stores with YCSB (§4.3): Zipfian request
//! distributions for Aerospike and Cassandra, and a hotspot distribution
//! for Redis where "0.01% of the keys account for 90% of the traffic".
//! These generators reproduce those shapes deterministically.

use thermo_util::rng::Rng;
use thermo_util::rng::SmallRng;

/// A distribution over integer keys `0..n`.
pub trait KeyDist {
    /// Number of keys.
    fn n(&self) -> u64;

    /// Draws one key.
    fn sample(&self, rng: &mut SmallRng) -> u64;
}

/// Uniform over `0..n`.
#[derive(Debug, Clone)]
pub struct UniformDist {
    n: u64,
}

impl UniformDist {
    /// Uniform over `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: u64) -> Self {
        assert!(n > 0, "empty key space");
        Self { n }
    }
}

impl KeyDist for UniformDist {
    fn n(&self) -> u64 {
        self.n
    }

    fn sample(&self, rng: &mut SmallRng) -> u64 {
        rng.gen_range(0..self.n)
    }
}

/// The YCSB Zipfian generator (Gray et al.'s "quickly generating
/// billion-record synthetic databases" rejection-free algorithm).
///
/// Rank 0 is the most popular key; popularity of rank `r` is proportional
/// to `1 / (r+1)^theta`.
#[derive(Debug, Clone)]
pub struct ZipfianDist {
    n: u64,
    theta: f64,
    alpha: f64,
    zeta_n: f64,
    eta: f64,
}

impl ZipfianDist {
    /// YCSB's default skew.
    pub const YCSB_THETA: f64 = 0.99;

    /// Builds a Zipfian distribution over `0..n` with skew `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is not in `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "empty key space");
        assert!(
            theta > 0.0 && theta < 1.0,
            "theta must be in (0,1), got {theta}"
        );
        let zeta_n = Self::zeta(n, theta);
        let zeta_theta = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta_theta / zeta_n);
        Self {
            n,
            theta,
            alpha,
            zeta_n,
            eta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct summation for moderate n; our scaled key spaces stay in the
        // millions, where this one-time O(n) cost is negligible.
        let mut sum = 0.0;
        for i in 1..=n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        sum
    }

    /// Skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }
}

impl KeyDist for ZipfianDist {
    fn n(&self) -> u64 {
        self.n
    }

    fn sample(&self, rng: &mut SmallRng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

/// Scrambles Zipfian ranks over the key space so popular keys are spread
/// across pages rather than clustered at low addresses (YCSB's
/// "scrambled zipfian"). Spreading matters here: Thermostat works at page
/// granularity, and real stores hash keys into memory.
#[derive(Debug, Clone)]
pub struct ScrambledZipfian {
    inner: ZipfianDist,
}

impl ScrambledZipfian {
    /// Scrambled Zipfian over `0..n` with YCSB's default theta.
    pub fn new(n: u64) -> Self {
        Self {
            inner: ZipfianDist::new(n, ZipfianDist::YCSB_THETA),
        }
    }

    /// Scrambled Zipfian with explicit skew.
    pub fn with_theta(n: u64, theta: f64) -> Self {
        Self {
            inner: ZipfianDist::new(n, theta),
        }
    }
}

/// 64-bit finalizer (splitmix64) used as the scrambling hash.
pub fn fnv_mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

impl KeyDist for ScrambledZipfian {
    fn n(&self) -> u64 {
        self.inner.n()
    }

    fn sample(&self, rng: &mut SmallRng) -> u64 {
        let rank = self.inner.sample(rng);
        fnv_mix(rank) % self.inner.n()
    }
}

/// The Redis hotspot distribution: a fraction of keys receives a fraction
/// of the traffic. Within the hot set, popularity follows a Zipfian curve
/// (real key popularity is heavily skewed — the paper's value-size citation
/// [12] documents the same for Facebook's workloads); the residual traffic
/// is uniform over the whole key space.
#[derive(Debug, Clone)]
pub struct HotspotDist {
    n: u64,
    hot_keys: u64,
    hot_traffic: f64,
    hot_rank: ZipfianDist,
}

impl HotspotDist {
    /// `hot_key_fraction` of the keys get `hot_traffic_fraction` of the
    /// accesses. The paper's Redis load: 0.01% of keys, 90% of traffic.
    ///
    /// # Panics
    ///
    /// Panics on an empty key space or fractions outside `(0, 1)`.
    pub fn new(n: u64, hot_key_fraction: f64, hot_traffic_fraction: f64) -> Self {
        assert!(n > 0, "empty key space");
        assert!((0.0..1.0).contains(&hot_key_fraction) && hot_key_fraction > 0.0);
        assert!((0.0..1.0).contains(&hot_traffic_fraction) && hot_traffic_fraction > 0.0);
        let hot_keys = ((n as f64 * hot_key_fraction).ceil() as u64).max(1);
        Self {
            n,
            hot_keys,
            hot_traffic: hot_traffic_fraction,
            hot_rank: ZipfianDist::new(hot_keys, 0.9),
        }
    }

    /// The paper's Redis configuration over `n` keys.
    pub fn paper_redis(n: u64) -> Self {
        Self::new(n, 0.0001, 0.90)
    }

    /// Number of hot keys.
    pub fn hot_keys(&self) -> u64 {
        self.hot_keys
    }
}

impl KeyDist for HotspotDist {
    fn n(&self) -> u64 {
        self.n
    }

    fn sample(&self, rng: &mut SmallRng) -> u64 {
        if rng.gen::<f64>() < self.hot_traffic {
            // Zipf-weighted rank within the hot set, spread over the key
            // space by the scrambling hash (hash-table layout).
            let k = self.hot_rank.sample(rng);
            fnv_mix(k) % self.n
        } else {
            rng.gen_range(0..self.n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermo_util::rng::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    fn histogram(dist: &dyn KeyDist, samples: usize) -> Vec<u64> {
        let mut rng = rng();
        let mut h = vec![0u64; dist.n() as usize];
        for _ in 0..samples {
            h[dist.sample(&mut rng) as usize] += 1;
        }
        h
    }

    #[test]
    fn uniform_is_flat() {
        let d = UniformDist::new(100);
        let h = histogram(&d, 100_000);
        let (min, max) = (h.iter().min().unwrap(), h.iter().max().unwrap());
        assert!(
            *min > 700 && *max < 1300,
            "uniform too skewed: {min}..{max}"
        );
    }

    #[test]
    fn zipfian_head_dominates() {
        let d = ZipfianDist::new(1000, 0.99);
        let h = histogram(&d, 200_000);
        // Rank 0 should take roughly 1/zeta(1000) ~ 13% of traffic.
        let frac0 = h[0] as f64 / 200_000.0;
        assert!(frac0 > 0.08 && frac0 < 0.20, "rank-0 fraction {frac0}");
        // Top 10% of ranks take the majority.
        let head: u64 = h[..100].iter().sum();
        assert!(head as f64 / 200_000.0 > 0.6);
    }

    #[test]
    fn zipfian_samples_in_range() {
        let d = ZipfianDist::new(37, 0.5);
        let mut rng = rng();
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) < 37);
        }
    }

    #[test]
    fn scrambled_zipfian_spreads_popularity() {
        let d = ScrambledZipfian::new(1000);
        let h = histogram(&d, 200_000);
        // The most popular scrambled key is NOT key 0 in general, and the
        // top key still has zipfian-scale popularity.
        let max = *h.iter().max().unwrap();
        assert!(max as f64 / 200_000.0 > 0.08);
        // Popularity must not be concentrated in the low indices.
        let low: u64 = h[..100].iter().sum();
        assert!(
            (low as f64 / 200_000.0) < 0.5,
            "scramble failed to spread head"
        );
    }

    #[test]
    fn hotspot_traffic_split_matches_config() {
        let d = HotspotDist::new(100_000, 0.001, 0.9); // 100 hot keys
        assert_eq!(d.hot_keys(), 100);
        let mut rng = rng();
        let hot_set: std::collections::HashSet<u64> =
            (0..d.hot_keys()).map(|k| fnv_mix(k) % 100_000).collect();
        let mut hot_hits = 0;
        let n = 100_000;
        for _ in 0..n {
            if hot_set.contains(&d.sample(&mut rng)) {
                hot_hits += 1;
            }
        }
        let frac = hot_hits as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.02, "hot traffic fraction {frac}");
    }

    #[test]
    fn paper_redis_hotspot_shape() {
        let d = HotspotDist::paper_redis(4_000_000);
        assert_eq!(d.hot_keys(), 400);
    }

    #[test]
    fn determinism_same_seed() {
        let d = ZipfianDist::new(10_000, 0.99);
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "empty key space")]
    fn zero_keys_panics() {
        UniformDist::new(0);
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn bad_theta_panics() {
        ZipfianDist::new(10, 1.5);
    }
}

//! Key-selection distributions.
//!
//! The paper drives its NoSQL stores with YCSB (§4.3): Zipfian request
//! distributions for Aerospike and Cassandra, and a hotspot distribution
//! for Redis where "0.01% of the keys account for 90% of the traffic".
//! These generators reproduce those shapes deterministically.

use thermo_util::rng::Rng;
use thermo_util::rng::SmallRng;

/// A distribution over integer keys `0..n`.
pub trait KeyDist {
    /// Number of keys.
    fn n(&self) -> u64;

    /// Draws one key.
    fn sample(&self, rng: &mut SmallRng) -> u64;
}

/// Uniform over `0..n`.
#[derive(Debug, Clone)]
pub struct UniformDist {
    n: u64,
}

impl UniformDist {
    /// Uniform over `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: u64) -> Self {
        assert!(n > 0, "empty key space");
        Self { n }
    }
}

impl KeyDist for UniformDist {
    fn n(&self) -> u64 {
        self.n
    }

    fn sample(&self, rng: &mut SmallRng) -> u64 {
        rng.gen_range(0..self.n)
    }
}

/// The YCSB Zipfian generator (Gray et al.'s "quickly generating
/// billion-record synthetic databases" rejection-free algorithm).
///
/// Rank 0 is the most popular key; popularity of rank `r` is proportional
/// to `1 / (r+1)^theta`.
#[derive(Debug, Clone)]
pub struct ZipfianDist {
    n: u64,
    theta: f64,
    alpha: f64,
    eta: f64,
    /// First-level index over `head_x`: `index[k]` is the number of head
    /// boundaries at or below `k / index.len()`, so a sample's search
    /// range narrows to `[index[k], index[k+1]]` — usually 0 or 1 entries
    /// for the popular ranks, making the common case O(1).
    index: std::sync::Arc<[u32]>,
    /// Inverse-CDF head table on the integer draw lattice: `head_x[j]` is
    /// the smallest 53-bit draw `x` (the integer behind `rng.gen::<f64>()`,
    /// `u = x / 2^53` exactly) whose power-curve rank reaches `j + 1`.
    /// Derived bit-exactly from the f64 boundary table (see
    /// [`head_table`](Self::head_table)): `head_x[j] = ceil(head[j]·2^53)`,
    /// an exact computation because multiplying an f64 by a power of two
    /// only shifts its exponent. Comparing `head_x[j] <= x` is therefore
    /// *identical* to comparing `head[j] <= u` — but in one integer compare
    /// on the hot path instead of a float one.
    head_x: std::sync::Arc<[u64]>,
    /// Whether the head table covers every rank below `n - 1`.
    head_full: bool,
    /// Draws below `x0` have `u·zeta_n < 1.0` (rank 0); below `x1`,
    /// `u·zeta_n < 1 + (1/2)^theta` (rank 1); below `x_last`, the head
    /// table resolves the rank. Each is the exact lattice threshold of the
    /// corresponding f64 comparison, found by bisection over `x` — the f64
    /// predicate is monotone in `x`, so the integer compare agrees with the
    /// float compare for *every* possible draw.
    x0: u64,
    x1: u64,
    x_last: u64,
}

impl ZipfianDist {
    /// YCSB's default skew.
    pub const YCSB_THETA: f64 = 0.99;

    /// Builds a Zipfian distribution over `0..n` with skew `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is not in `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "empty key space");
        assert!(
            theta > 0.0 && theta < 1.0,
            "theta must be in (0,1), got {theta}"
        );
        let zeta_n = Self::zeta(n, theta);
        let zeta_theta = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta_theta / zeta_n);
        let (_, index, head_x) = Self::head_table(n, theta, alpha, eta);
        Self {
            n,
            theta,
            alpha,
            eta,
            x0: Self::x_threshold(zeta_n, 1.0),
            x1: Self::x_threshold(zeta_n, 1.0 + 0.5f64.powf(theta)),
            x_last: head_x.last().copied().unwrap_or(0),
            head_full: head_x.len() as u64 == n - 1,
            index,
            head_x,
        }
    }

    /// The draw lattice: `rng.gen::<f64>()` is exactly `x / 2^53` for a
    /// 53-bit integer `x` (see `thermo_util::rng`), so every f64 comparison
    /// in `sample` has an exact integer-threshold equivalent.
    const LATTICE: u64 = 1 << 53;

    /// Smallest lattice point `x` whose unit draw `u = x / 2^53` satisfies
    /// `u * zeta_n >= target`, found by bisection — `u` is exact and the
    /// f64 product is nondecreasing in `u`, so the predicate is monotone.
    /// Returns `2^53` (past every possible draw) when no draw reaches the
    /// target: `x < threshold` then holds always, exactly like the float
    /// comparison it replaces.
    fn x_threshold(zeta_n: f64, target: f64) -> u64 {
        let scale = 1.0 / Self::LATTICE as f64;
        let reaches = |x: u64| (x as f64 * scale) * zeta_n >= target;
        if !reaches(Self::LATTICE) {
            return Self::LATTICE;
        }
        let (mut lo, mut hi) = (0u64, Self::LATTICE);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if reaches(mid) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }

    /// Ranks covered by the inverse-CDF head table. Sized so the table
    /// (128KB worst case, shared process-wide) absorbs the bulk of the
    /// u-space at YCSB skews while staying cheap to build.
    const HEAD_RANKS: u64 = 16384;

    /// Buckets in the first-level index. A power of two, so `u * BUCKETS`
    /// is an exact f64 product (exponent shift only) and the bucket of `u`
    /// is computed without rounding — the index lookup is bit-exact.
    const INDEX_BUCKETS: usize = 16384;

    /// The power-curve rank `sample`'s general branch computes — the
    /// oracle the head table must agree with bit-for-bit.
    #[inline]
    fn power_rank(n: u64, alpha: f64, eta: f64, u: f64) -> u64 {
        let rank = (n as f64 * (eta * u - eta + 1.0).powf(alpha)) as u64;
        rank.min(n - 1)
    }

    /// Builds (memoized process-wide, like [`zeta`](Self::zeta)) the head
    /// boundary table: `head[j]` is the smallest `f64` in `[0, 1]` whose
    /// [`power_rank`](Self::power_rank) is at least `j + 1`.
    ///
    /// `power_rank` is nondecreasing in `u` (`eta >= 0`, `alpha > 0`, and
    /// the base stays in `[0, 1]`), so each boundary is found by exact
    /// bisection over the f64 bit lattice — positive doubles compare like
    /// their bit patterns — seeded from the analytic inverse
    /// `u = (((j+1)/n)^(1/alpha) - 1 + eta) / eta` to keep the bracket a
    /// few thousand ulps wide. The result is a pure function of
    /// `(n, theta)`; which worker builds it first is unobservable.
    #[allow(clippy::type_complexity)]
    fn head_table(
        n: u64,
        theta: f64,
        alpha: f64,
        eta: f64,
    ) -> (
        std::sync::Arc<[f64]>,
        std::sync::Arc<[u32]>,
        std::sync::Arc<[u64]>,
    ) {
        use std::sync::{Arc, Mutex};
        type Cache = std::collections::BTreeMap<(u64, u64), (Arc<[f64]>, Arc<[u32]>, Arc<[u64]>)>;
        static CACHE: Mutex<Option<Cache>> = Mutex::new(None);
        let key = (n, theta.to_bits());
        {
            let mut guard = CACHE.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(t) = guard.get_or_insert_with(Default::default).get(&key) {
                return t.clone();
            }
        }
        let covered = n.saturating_sub(1).min(Self::HEAD_RANKS);
        let one = 1.0f64.to_bits();
        let mut head = Vec::with_capacity(covered as usize);
        let mut floor = 0u64; // boundaries ascend: previous result bounds the next
        for j in 0..covered {
            let target = j + 1;
            if Self::power_rank(n, alpha, eta, 1.0) < target {
                // Unreachable rank (tiny n edge): no u maps this high.
                head.push(f64::from_bits(one));
                floor = one;
                continue;
            }
            // Bracket [lo, hi] in bit space with rank(lo) < target <= rank(hi),
            // starting from a window around the analytic seed.
            let seed = (((target as f64 / n as f64).powf(1.0 / alpha) - 1.0 + eta) / eta)
                .clamp(0.0, 1.0)
                .to_bits();
            let mut lo = floor;
            let mut hi = one;
            for w in [1u64 << 12, 1 << 24] {
                let (a, b) = (
                    seed.saturating_sub(w).max(floor),
                    seed.saturating_add(w).min(one),
                );
                if a < b
                    && Self::power_rank(n, alpha, eta, f64::from_bits(a)) < target
                    && Self::power_rank(n, alpha, eta, f64::from_bits(b)) >= target
                {
                    lo = a;
                    hi = b;
                    break;
                }
            }
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if Self::power_rank(n, alpha, eta, f64::from_bits(mid)) >= target {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            head.push(f64::from_bits(lo));
            floor = lo;
        }
        let head: Arc<[f64]> = head.into();
        // First-level index: `index[k]` is the first head slot whose
        // boundary reaches `k / INDEX_BUCKETS`. Boundaries ascend, so one
        // linear merge builds it. For `u` in bucket `k` (exactly
        // `k/B <= u < (k+1)/B`, since B is a power of two) every boundary
        // below slot `index[k]` is `<= u` and every boundary at or past
        // slot `index[k+1]` is `> u` — the search collapses to the slice
        // between them.
        let b = Self::INDEX_BUCKETS;
        let mut index = Vec::with_capacity(b + 1);
        let mut j = 0usize;
        for k in 0..=b {
            let lo = k as f64 / b as f64;
            while j < head.len() && head[j] < lo {
                j += 1;
            }
            index.push(j as u32);
        }
        let index: Arc<[u32]> = index.into();
        // Integer-lattice mirror of the boundary table: `t·2^53` is exact
        // (power-of-two multiply), so `ceil` lands on the first draw `x`
        // with `t <= x/2^53`. A boundary of exactly 1.0 (unreachable rank)
        // maps to `2^53`, past every draw — counted never, like the float.
        let head_x: Arc<[u64]> = head
            .iter()
            .map(|&t| (t * Self::LATTICE as f64).ceil() as u64)
            .collect();
        CACHE
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get_or_insert_with(Default::default)
            .insert(key, (head.clone(), index.clone(), head_x.clone()));
        (head, index, head_x)
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct summation, memoized process-wide: sharded sweeps construct
        // thousands of distributions over the same handful of (n, theta)
        // pairs, and the O(n) powf sum dominated their setup. The cached
        // value is a pure function of the key, so which worker computes it
        // first is unobservable.
        use std::sync::Mutex;
        static CACHE: Mutex<Option<std::collections::BTreeMap<(u64, u64), f64>>> = Mutex::new(None);
        let key = (n, theta.to_bits());
        {
            let mut guard = CACHE.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = guard.get_or_insert_with(Default::default).get(&key) {
                return *v;
            }
        }
        let mut sum = 0.0;
        for i in 1..=n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        CACHE
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get_or_insert_with(Default::default)
            .insert(key, sum);
        sum
    }

    /// Counts the head boundaries at or below draw `x` — the power-curve
    /// rank of `u = x/2^53` within the table — via the first-level index:
    /// the bucket of `u` is `x >> (53 - log2(INDEX_BUCKETS))` (exact, both
    /// are powers of two), then a search over the
    /// usually-empty-or-single-entry slice between the bucket's bounds.
    /// Equal to the full-table `head.partition_point(|&t| t <= u)` by the
    /// index invariant: a boundary `t < k/B` has `head_x <= k·2^39 <= x`,
    /// and one with `t >= (k+1)/B` has `head_x >= (k+1)·2^39 > x`.
    #[inline]
    fn head_rank_x(&self, x: u64) -> u64 {
        let b = self.index.len() - 1;
        let k = ((x >> (53 - Self::INDEX_BUCKETS.trailing_zeros())) as usize).min(b - 1);
        let lo = self.index[k] as usize;
        let hi = self.index[k + 1] as usize;
        (lo + self.head_x[lo..hi].partition_point(|&t| t <= x)) as u64
    }

    /// Skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }
}

impl KeyDist for ZipfianDist {
    fn n(&self) -> u64 {
        self.n
    }

    fn sample(&self, rng: &mut SmallRng) -> u64 {
        // The entire decision runs on the integer draw lattice: `x` is the
        // 53-bit integer behind `rng.gen::<f64>()`, and `x0`/`x1`/`x_last`/
        // `head_x` are the exact lattice thresholds of the historical f64
        // comparisons (`u·zeta_n < 1`, `< 1 + (1/2)^theta`, `u < last`,
        // `head[j] <= u`) — same branch taken for every possible draw,
        // with zero float ops until the rare powf tail.
        let x = rng.next_u64() >> 11;
        if x < self.x0 {
            return 0;
        }
        if x < self.x1 {
            return 1;
        }
        // The head table resolves the popular ranks without a `powf`:
        // counting the boundaries at or below the draw IS the power-curve
        // rank (each boundary is the exact lattice point where the rank
        // first reaches its index + 1). Only the tail beyond the table —
        // or beyond-head ranks of a very large key space — pays for the
        // powf, reconstructing the identical `u` the f64 path drew.
        if self.head_full || x < self.x_last {
            return self.head_rank_x(x);
        }
        let u = x as f64 * (1.0 / Self::LATTICE as f64);
        Self::power_rank(self.n, self.alpha, self.eta, u)
    }
}

/// Scrambles Zipfian ranks over the key space so popular keys are spread
/// across pages rather than clustered at low addresses (YCSB's
/// "scrambled zipfian"). Spreading matters here: Thermostat works at page
/// granularity, and real stores hash keys into memory.
#[derive(Debug, Clone)]
pub struct ScrambledZipfian {
    inner: ZipfianDist,
}

impl ScrambledZipfian {
    /// Scrambled Zipfian over `0..n` with YCSB's default theta.
    pub fn new(n: u64) -> Self {
        Self {
            inner: ZipfianDist::new(n, ZipfianDist::YCSB_THETA),
        }
    }

    /// Scrambled Zipfian with explicit skew.
    pub fn with_theta(n: u64, theta: f64) -> Self {
        Self {
            inner: ZipfianDist::new(n, theta),
        }
    }
}

/// 64-bit finalizer (splitmix64) used as the scrambling hash.
pub fn fnv_mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

impl KeyDist for ScrambledZipfian {
    fn n(&self) -> u64 {
        self.inner.n()
    }

    fn sample(&self, rng: &mut SmallRng) -> u64 {
        let rank = self.inner.sample(rng);
        fnv_mix(rank) % self.inner.n()
    }
}

/// The Redis hotspot distribution: a fraction of keys receives a fraction
/// of the traffic. Within the hot set, popularity follows a Zipfian curve
/// (real key popularity is heavily skewed — the paper's value-size citation
/// [12] documents the same for Facebook's workloads); the residual traffic
/// is uniform over the whole key space.
#[derive(Debug, Clone)]
pub struct HotspotDist {
    n: u64,
    hot_keys: u64,
    /// Exact lattice threshold of the hot/cold draw: `x < x_hot` iff the
    /// f64 draw `u = x/2^53` satisfies `u < hot_traffic_fraction`
    /// (`ceil(fraction·2^53)`, exact — power-of-two multiply).
    x_hot: u64,
    /// Precomputed magic for the `% n` spreading the hot rank over the key
    /// space — exact, so keys are bit-identical to the hardware modulo.
    n_mod: thermo_util::fastdiv::FastMod,
    hot_rank: ZipfianDist,
}

impl HotspotDist {
    /// `hot_key_fraction` of the keys get `hot_traffic_fraction` of the
    /// accesses. The paper's Redis load: 0.01% of keys, 90% of traffic.
    ///
    /// # Panics
    ///
    /// Panics on an empty key space or fractions outside `(0, 1)`.
    pub fn new(n: u64, hot_key_fraction: f64, hot_traffic_fraction: f64) -> Self {
        assert!(n > 0, "empty key space");
        assert!((0.0..1.0).contains(&hot_key_fraction) && hot_key_fraction > 0.0);
        assert!((0.0..1.0).contains(&hot_traffic_fraction) && hot_traffic_fraction > 0.0);
        let hot_keys = ((n as f64 * hot_key_fraction).ceil() as u64).max(1);
        Self {
            n,
            hot_keys,
            x_hot: (hot_traffic_fraction * ZipfianDist::LATTICE as f64).ceil() as u64,
            n_mod: thermo_util::fastdiv::FastMod::new(n),
            hot_rank: ZipfianDist::new(hot_keys, 0.9),
        }
    }

    /// The paper's Redis configuration over `n` keys.
    pub fn paper_redis(n: u64) -> Self {
        Self::new(n, 0.0001, 0.90)
    }

    /// Number of hot keys.
    pub fn hot_keys(&self) -> u64 {
        self.hot_keys
    }
}

impl KeyDist for HotspotDist {
    fn n(&self) -> u64 {
        self.n
    }

    fn sample(&self, rng: &mut SmallRng) -> u64 {
        // Integer form of `rng.gen::<f64>() < hot_traffic` — same draw,
        // same branch, no float ops (see `x_hot`).
        if rng.next_u64() >> 11 < self.x_hot {
            // Zipf-weighted rank within the hot set, spread over the key
            // space by the scrambling hash (hash-table layout).
            let k = self.hot_rank.sample(rng);
            self.n_mod.rem(fnv_mix(k))
        } else {
            rng.gen_range(0..self.n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermo_util::rng::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    fn histogram(dist: &dyn KeyDist, samples: usize) -> Vec<u64> {
        let mut rng = rng();
        let mut h = vec![0u64; dist.n() as usize];
        for _ in 0..samples {
            h[dist.sample(&mut rng) as usize] += 1;
        }
        h
    }

    #[test]
    fn uniform_is_flat() {
        let d = UniformDist::new(100);
        let h = histogram(&d, 100_000);
        let (min, max) = (h.iter().min().unwrap(), h.iter().max().unwrap());
        assert!(
            *min > 700 && *max < 1300,
            "uniform too skewed: {min}..{max}"
        );
    }

    #[test]
    fn zipfian_head_dominates() {
        let d = ZipfianDist::new(1000, 0.99);
        let h = histogram(&d, 200_000);
        // Rank 0 should take roughly 1/zeta(1000) ~ 13% of traffic.
        let frac0 = h[0] as f64 / 200_000.0;
        assert!(frac0 > 0.08 && frac0 < 0.20, "rank-0 fraction {frac0}");
        // Top 10% of ranks take the majority.
        let head: u64 = h[..100].iter().sum();
        assert!(head as f64 / 200_000.0 > 0.6);
    }

    #[test]
    fn zipfian_samples_in_range() {
        let d = ZipfianDist::new(37, 0.5);
        let mut rng = rng();
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) < 37);
        }
    }

    #[test]
    fn scrambled_zipfian_spreads_popularity() {
        let d = ScrambledZipfian::new(1000);
        let h = histogram(&d, 200_000);
        // The most popular scrambled key is NOT key 0 in general, and the
        // top key still has zipfian-scale popularity.
        let max = *h.iter().max().unwrap();
        assert!(max as f64 / 200_000.0 > 0.08);
        // Popularity must not be concentrated in the low indices.
        let low: u64 = h[..100].iter().sum();
        assert!(
            (low as f64 / 200_000.0) < 0.5,
            "scramble failed to spread head"
        );
    }

    #[test]
    fn hotspot_traffic_split_matches_config() {
        let d = HotspotDist::new(100_000, 0.001, 0.9); // 100 hot keys
        assert_eq!(d.hot_keys(), 100);
        let mut rng = rng();
        let hot_set: std::collections::HashSet<u64> =
            (0..d.hot_keys()).map(|k| fnv_mix(k) % 100_000).collect();
        let mut hot_hits = 0;
        let n = 100_000;
        for _ in 0..n {
            if hot_set.contains(&d.sample(&mut rng)) {
                hot_hits += 1;
            }
        }
        let frac = hot_hits as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.02, "hot traffic fraction {frac}");
    }

    #[test]
    fn paper_redis_hotspot_shape() {
        let d = HotspotDist::paper_redis(4_000_000);
        assert_eq!(d.hot_keys(), 400);
    }

    #[test]
    fn determinism_same_seed() {
        let d = ZipfianDist::new(10_000, 0.99);
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "empty key space")]
    fn zero_keys_panics() {
        UniformDist::new(0);
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn bad_theta_panics() {
        ZipfianDist::new(10, 1.5);
    }

    #[test]
    fn head_table_matches_power_curve_exactly() {
        // The inverse-CDF head table must agree with the powf formula for
        // every drawn u — including the boundary neighbourhoods. Probe
        // dense uniform u plus the exact boundary values and their
        // predecessors for several (n, theta) shapes.
        for &(n, theta) in &[
            (37u64, 0.5f64),
            (400, 0.9),
            (100_000, 0.99),
            (4_000_000, 0.99),
        ] {
            let d = ZipfianDist::new(n, theta);
            let (head, _, _) = ZipfianDist::head_table(n, theta, d.alpha, d.eta);
            let check = |u: f64| {
                let direct = ZipfianDist::power_rank(n, d.alpha, d.eta, u);
                let covered = head.len() as u64;
                let via_table = if covered == n - 1 || head.last().is_some_and(|&l| u < l) {
                    Some(head.partition_point(|&t| t <= u) as u64)
                } else {
                    None
                };
                if let Some(t) = via_table {
                    assert_eq!(t, direct, "n={n} theta={theta} u={u}");
                }
            };
            for i in 0..20_000u64 {
                check(i as f64 / 20_000.0);
            }
            for &b in head.iter().take(512) {
                check(b);
                check(f64::from_bits(b.to_bits().saturating_sub(1)));
            }
        }
    }

    #[test]
    fn index_narrowed_search_matches_full_partition_point() {
        // The integer head search must agree with the f64 full-table
        // partition point for every lattice draw — probe dense x, every
        // bucket boundary, and every head boundary, all ± 1 lattice step.
        for &(n, theta) in &[(37u64, 0.5f64), (400, 0.9), (100_000, 0.99)] {
            let d = ZipfianDist::new(n, theta);
            let (head, _, _) = ZipfianDist::head_table(n, theta, d.alpha, d.eta);
            let check = |x: u64| {
                if x >= ZipfianDist::LATTICE {
                    return; // rng draws are in [0, 2^53)
                }
                let u = x as f64 * (1.0 / ZipfianDist::LATTICE as f64);
                assert_eq!(
                    d.head_rank_x(x),
                    head.partition_point(|&t| t <= u) as u64,
                    "n={n} theta={theta} x={x}"
                );
            };
            let step = ZipfianDist::LATTICE / 20_000;
            for i in 0..20_000u64 {
                check(i * step);
            }
            check(ZipfianDist::LATTICE - 1);
            let b = (d.index.len() - 1) as u64;
            let bucket_shift = 53 - (d.index.len() - 1).trailing_zeros();
            for k in 0..b.min(4096) {
                let edge = k << bucket_shift;
                check(edge.saturating_sub(1));
                check(edge);
                check(edge + 1);
            }
            for &hx in d.head_x.iter() {
                check(hx.saturating_sub(1));
                check(hx);
                check(hx + 1);
            }
        }
    }

    #[test]
    fn integer_branch_thresholds_match_float_comparisons() {
        // Every branch `sample` takes on the integer lattice must match
        // the historical f64 comparison at the same draw — probe densely
        // plus each threshold's neighbourhood.
        for &(n, theta) in &[(37u64, 0.5f64), (400, 0.9), (250_000, 0.99)] {
            let d = ZipfianDist::new(n, theta);
            let zeta_n = ZipfianDist::zeta(n, theta);
            let half_pow_theta = 0.5f64.powf(theta);
            let (head, _, _) = ZipfianDist::head_table(n, theta, d.alpha, d.eta);
            let check = |x: u64| {
                if x >= ZipfianDist::LATTICE {
                    return;
                }
                let u = x as f64 * (1.0 / ZipfianDist::LATTICE as f64);
                let uz = u * zeta_n;
                assert_eq!(x < d.x0, uz < 1.0, "x0: n={n} theta={theta} x={x}");
                assert_eq!(
                    x < d.x1,
                    uz < 1.0 + half_pow_theta,
                    "x1: n={n} theta={theta} x={x}"
                );
                assert_eq!(
                    x < d.x_last,
                    head.last().is_some_and(|&last| u < last),
                    "x_last: n={n} theta={theta} x={x}"
                );
            };
            for t in [d.x0, d.x1, d.x_last] {
                for dx in 0..4u64 {
                    check(t.saturating_sub(dx));
                    check(t + dx);
                }
            }
            let step = ZipfianDist::LATTICE / 10_000;
            for i in 0..10_000u64 {
                check(i * step);
            }
        }
    }

    #[test]
    fn head_table_sampling_matches_formula_only_sampling() {
        // End to end: a dist sampled through the table must produce the
        // same stream as the pre-table formula. Reconstruct the formula
        // path by hand and compare.
        let d = ZipfianDist::new(250_000, 0.99);
        let zeta_n = ZipfianDist::zeta(d.n, d.theta);
        let half_pow_theta = 0.5f64.powf(d.theta);
        let mut a = SmallRng::seed_from_u64(99);
        let mut b = SmallRng::seed_from_u64(99);
        for _ in 0..50_000 {
            let got = d.sample(&mut a);
            let u: f64 = b.gen();
            let uz = u * zeta_n;
            let want = if uz < 1.0 {
                0
            } else if uz < 1.0 + half_pow_theta {
                1
            } else {
                ZipfianDist::power_rank(d.n, d.alpha, d.eta, u)
            };
            assert_eq!(got, want);
        }
    }
}

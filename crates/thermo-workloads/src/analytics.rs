//! In-memory analytics (Cloudsuite collaborative filtering on Spark).
//!
//! Paper configuration (§4.3): ~6.2GB resident, ~1MB file-mapped; the
//! benchmark runs a collaborative-filtering algorithm over a user-movie
//! ratings dataset entirely in memory and *runs to completion* (317s on
//! the paper's baseline). Figure 9 shows 15–20% detected cold, with the
//! footprint growing as Spark materializes RDD partitions over time.
//!
//! The generator models three RDD generations:
//! * **ratings** — scanned sequentially every iteration, materialized
//!   progressively (the growing footprint);
//! * **model vectors** — small, random-access, always hot;
//! * **old cached RDDs** — lineage kept in memory but no longer accessed
//!   (the cold 15–20%).

use crate::common::{AppConfig, Region};
use thermo_sim::{Access, Engine, FootprintInfo, Workload};
use thermo_util::rng::SmallRng;
use thermo_util::rng::{Rng, SeedableRng};

/// Ratings partitions (scanned warm data).
const PAPER_RATINGS: u64 = 4_000_000_000;
/// Model/factor vectors (hot).
const PAPER_MODEL: u64 = 1_000_000_000;
/// Stale cached RDDs (cold).
const PAPER_OLD_GEN: u64 = 1_200_000_000;

/// Number of full scan passes (Spark iterations) the job performs before
/// completing.
const ITERATIONS: u64 = 12;

/// The in-memory analytics generator.
#[derive(Debug)]
pub struct Analytics {
    cfg: AppConfig,
    rng: SmallRng,
    ratings: Option<Region>,
    model: Option<Region>,
    old_gen: Option<Region>,
    /// Scan position within the ratings region, bytes.
    cursor: u64,
    /// Completed iterations.
    iterations_done: u64,
    compute_ns: u64,
}

impl Analytics {
    /// Creates the generator.
    pub fn new(cfg: AppConfig) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(cfg.seed ^ 0xa7a1),
            cfg,
            ratings: None,
            model: None,
            old_gen: None,
            cursor: 0,
            iterations_done: 0,
            compute_ns: 2_200,
        }
    }

    /// Completed scan iterations.
    pub fn iterations_done(&self) -> u64 {
        self.iterations_done
    }
}

impl Workload for Analytics {
    fn name(&self) -> &str {
        "in-memory-analytics"
    }

    fn init(&mut self, engine: &mut Engine) {
        let ratings = Region::map(
            engine,
            self.cfg.scaled(PAPER_RATINGS),
            true,
            false,
            "spark-ratings",
        );
        let model = Region::map(
            engine,
            self.cfg.scaled(PAPER_MODEL),
            true,
            false,
            "spark-model",
        );
        let old_gen = Region::map(
            engine,
            self.cfg.scaled(PAPER_OLD_GEN),
            true,
            false,
            "spark-oldgen",
        );
        // The old generation was materialized earlier in the job; the
        // ratings are paged in lazily as the first iteration scans them
        // (Figure 9's footprint growth).
        model.warm(engine);
        old_gen.warm(engine);
        self.ratings = Some(ratings);
        self.model = Some(model);
        self.old_gen = Some(old_gen);
    }

    fn next_op(&mut self, _now_ns: u64, accesses: &mut Vec<Access>) -> Option<u64> {
        if self.iterations_done >= ITERATIONS {
            return None; // job complete — the paper runs this to completion
        }
        let ratings = self.ratings.expect("init first");
        let model = self.model.expect("init first");

        // Stream four sequential lines of ratings…
        for i in 0..4u64 {
            accesses.push(Access::read(ratings.at(self.cursor + i * 64)));
        }
        self.cursor += 4 * 64;
        if self.cursor >= ratings.bytes {
            self.cursor = 0;
            self.iterations_done += 1;
        }
        // …and update one random model vector (gradient step).
        let off: u64 = self.rng.gen_range(0..model.bytes);
        accesses.push(Access::write(model.at(off & !63)));
        Some(self.compute_ns)
    }

    fn footprint(&self) -> FootprintInfo {
        FootprintInfo {
            anon_bytes: self.cfg.scaled(PAPER_RATINGS)
                + self.cfg.scaled(PAPER_MODEL)
                + self.cfg.scaled(PAPER_OLD_GEN),
            file_bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermo_sim::{run_for, run_ops, NoPolicy, SimConfig};

    fn setup() -> (Engine, Analytics) {
        let e = Engine::new(SimConfig::paper_defaults(256 << 20, 256 << 20));
        let a = Analytics::new(AppConfig {
            scale: 512,
            seed: 5,
            read_pct: 95,
        });
        (e, a)
    }

    #[test]
    fn footprint_grows_as_scan_advances() {
        let (mut e, mut a) = setup();
        a.init(&mut e);
        let rss0 = e.rss_bytes();
        run_ops(&mut e, &mut a, &mut NoPolicy, 5_000);
        let rss1 = e.rss_bytes();
        assert!(rss1 > rss0, "scanning must materialize ratings partitions");
    }

    #[test]
    fn job_runs_to_completion() {
        let (mut e, mut a) = setup();
        a.init(&mut e);
        let out = run_for(&mut e, &mut a, &mut NoPolicy, u64::MAX / 2);
        assert_eq!(a.iterations_done(), ITERATIONS);
        assert!(out.ops > 0);
        // After completion the workload stays finished.
        let mut buf = Vec::new();
        assert!(a.next_op(0, &mut buf).is_none());
    }

    #[test]
    fn old_gen_is_untouched_by_steady_state() {
        let mut cfg = SimConfig::paper_defaults(256 << 20, 256 << 20);
        cfg.track_true_access = true;
        let mut e = Engine::new(cfg);
        let mut a = Analytics::new(AppConfig {
            scale: 512,
            seed: 5,
            read_pct: 95,
        });
        a.init(&mut e);
        e.reset_true_access();
        run_ops(&mut e, &mut a, &mut NoPolicy, 10_000);
        let old = a.old_gen.unwrap();
        let touched_old = e.true_access_counts().keys().any(|v| {
            v.addr() >= old.base && v.addr() < thermo_mem::VirtAddr(old.base.0 + old.bytes)
        });
        assert!(!touched_old, "old generation must stay cold");
    }

    #[test]
    fn deterministic() {
        let run = || {
            let (mut e, mut a) = setup();
            a.init(&mut e);
            run_ops(&mut e, &mut a, &mut NoPolicy, 2_000);
            (e.now_ns(), e.stats().accesses)
        };
        assert_eq!(run(), run());
    }
}

//! Cassandra-like wide-column store.
//!
//! Paper configuration (§4.3): ~8GB resident plus ~4GB of file-mapped
//! pages (Cassandra compacts SSTables on disk and leans on the page
//! cache, which the paper backs with hugetmpfs). Traffic is YCSB Zipfian
//! over 5M keys at 95:5 or 5:95 read/write mixes. Distinctive behaviours
//! reproduced here:
//!
//! * the **Memtable grows** over the run (Figure 5's rising footprint:
//!   "memory consumption of Cassandra grows due to in-memory Memtables
//!   filling up");
//! * **SSTable pages** (file-backed) are touched rarely after compaction,
//!   forming a large cold pool — Thermostat finds 40–50% of Cassandra cold.

use crate::common::{percent, AppConfig, Region};
use crate::dist::{fnv_mix, KeyDist, ZipfianDist};
use thermo_sim::{Access, Engine, FootprintInfo, Workload};
use thermo_util::rng::SmallRng;
use thermo_util::rng::{Rng, SeedableRng};

/// Paper Table 2: 8GB RSS.
const PAPER_HEAP: u64 = 4_000_000_000;
/// Paper Table 2: the Memtable share of the RSS growth.
const PAPER_MEMTABLE: u64 = 4_000_000_000;
/// Paper Table 2: 4GB file-mapped (SSTables in the page cache).
const PAPER_SSTABLE: u64 = 4_000_000_000;
/// Commit-log ring.
const PAPER_COMMITLOG: u64 = 256_000_000;
/// Bytes appended to the Memtable per write.
const MEMTABLE_APPEND: u64 = 220;
/// Bytes per row slot in the heap (row cache + key cache).
const ROW_SLOT: u64 = 320;

/// The Cassandra-like generator.
#[derive(Debug)]
pub struct Cassandra {
    cfg: AppConfig,
    rng: SmallRng,
    heap: Option<Region>,
    memtable: Option<Region>,
    sstables: Option<Region>,
    commitlog: Option<Region>,
    dist: Option<ZipfianDist>,
    mem_cursor: u64,
    log_cursor: u64,
    compute_ns: u64,
}

impl Cassandra {
    /// Creates the generator with the mix from `cfg.read_pct` (the paper's
    /// Figure 5 uses the 5:95 write-heavy load).
    pub fn new(cfg: AppConfig) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(cfg.seed ^ 0xca55),
            cfg,
            heap: None,
            memtable: None,
            sstables: None,
            commitlog: None,
            dist: None,
            mem_cursor: 0,
            log_cursor: 0,
            compute_ns: 8_000,
        }
    }

    /// Current Memtable fill, bytes.
    pub fn memtable_fill(&self) -> u64 {
        self.mem_cursor
    }
}

impl Workload for Cassandra {
    fn name(&self) -> &str {
        "cassandra"
    }

    fn init(&mut self, engine: &mut Engine) {
        let heap = Region::map(
            engine,
            self.cfg.scaled(PAPER_HEAP),
            true,
            false,
            "cass-heap",
        );
        let memtable = Region::map(
            engine,
            self.cfg.scaled(PAPER_MEMTABLE),
            true,
            false,
            "cass-memtable",
        );
        let sstables = Region::map(
            engine,
            self.cfg.scaled(PAPER_SSTABLE),
            true,
            true,
            "cass-sstables",
        );
        let commitlog = Region::map(
            engine,
            self.cfg.scaled(PAPER_COMMITLOG),
            true,
            true,
            "cass-commitlog",
        );
        // The load phase fills the heap and flushes initial SSTables; the
        // Memtable starts empty and grows during the run.
        heap.warm(engine);
        sstables.warm(engine);
        commitlog.warm(engine);
        let n_keys = heap.n_slots(ROW_SLOT);
        self.dist = Some(ZipfianDist::new(n_keys, ZipfianDist::YCSB_THETA));
        self.heap = Some(heap);
        self.memtable = Some(memtable);
        self.sstables = Some(sstables);
        self.commitlog = Some(commitlog);
    }

    fn next_op(&mut self, _now_ns: u64, accesses: &mut Vec<Access>) -> Option<u64> {
        let heap = self.heap.expect("init first");
        let memtable = self.memtable.expect("init first");
        let sstables = self.sstables.expect("init first");
        let commitlog = self.commitlog.expect("init first");
        let dist = self.dist.as_ref().expect("init first");

        // Popularity rank drives both layouts: rows hash into the heap
        // (scrambled), while SSTables are laid out in compaction order, so
        // popular rows cluster in the recent (head) SSTable pages and the
        // old tail goes cold (the Figure 1 idle mass).
        let rank = dist.sample(&mut self.rng);
        let key = fnv_mix(rank) % dist.n();
        if percent(&mut self.rng, self.cfg.read_pct) {
            // Read path: key cache + row (two lines), occasionally falling
            // through to an SSTable page (page-cache hit in the paper's
            // hugetmpfs setup).
            // JVM object-graph traversal: key cache, partition metadata,
            // row object chain (several dependent pointer dereferences).
            for l in 0..5 {
                accesses.push(Access::read(heap.slot_line(key ^ (l * 77), ROW_SLOT, l)));
            }
            if self.rng.gen::<f64>() < 0.05 {
                // Order-preserving rank -> SSTable-page mapping: popular
                // rows live in the recent (head) SSTables, the tail of the
                // compaction order goes cold.
                let slot = rank * sstables.n_slots(4096) / dist.n().max(1);
                accesses.push(Access::read(sstables.slot(slot, 4096)));
            }
        } else {
            // Write path: commit-log append + Memtable append + row-cache
            // invalidation/update.
            accesses.push(Access::write(commitlog.at(self.log_cursor)));
            self.log_cursor = thermo_util::fastdiv::wrap_add(self.log_cursor, 64, commitlog.bytes);
            let m = memtable.at(self.mem_cursor);
            accesses.push(Access::write(m));
            accesses.push(Access::write(heap.slot(key, ROW_SLOT)));
            self.mem_cursor =
                thermo_util::fastdiv::wrap_add(self.mem_cursor, MEMTABLE_APPEND, memtable.bytes);
        }
        Some(self.compute_ns)
    }

    fn footprint(&self) -> FootprintInfo {
        FootprintInfo {
            anon_bytes: self.cfg.scaled(PAPER_HEAP) + self.cfg.scaled(PAPER_MEMTABLE),
            file_bytes: self.cfg.scaled(PAPER_SSTABLE) + self.cfg.scaled(PAPER_COMMITLOG),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermo_sim::{run_ops, NoPolicy, SimConfig};

    fn setup(read_pct: u8) -> (Engine, Cassandra) {
        let e = Engine::new(SimConfig::paper_defaults(256 << 20, 256 << 20));
        let c = Cassandra::new(AppConfig {
            scale: 512,
            seed: 3,
            read_pct,
        });
        (e, c)
    }

    #[test]
    fn memtable_growth_under_writes() {
        let (mut e, mut c) = setup(5); // write-heavy
        c.init(&mut e);
        let rss0 = e.rss_bytes();
        run_ops(&mut e, &mut c, &mut NoPolicy, 30_000);
        assert!(c.memtable_fill() > 0);
        assert!(e.rss_bytes() > rss0, "memtable appends must grow the RSS");
    }

    #[test]
    fn read_heavy_touches_sstables_rarely() {
        let (mut e, mut c) = setup(95);
        c.init(&mut e);
        let w0 = e.stats().writes;
        run_ops(&mut e, &mut c, &mut NoPolicy, 10_000);
        let writes = e.stats().writes - w0;
        // ~5% of ops are writes, each issuing 3 stores.
        assert!(writes < 3_000, "read-heavy mix wrote too much: {writes}");
    }

    #[test]
    fn file_backed_share_matches_table2_shape() {
        let (mut e, mut c) = setup(50);
        c.init(&mut e);
        let file = e.process().file_backed_bytes() as f64;
        let total = e.process().virtual_bytes() as f64;
        // Table 2: 4GB file-mapped of ~12GB total mapped.
        assert!(
            file / total > 0.25 && file / total < 0.5,
            "file share {}",
            file / total
        );
    }

    #[test]
    fn deterministic() {
        let run = || {
            let (mut e, mut c) = setup(5);
            c.init(&mut e);
            run_ops(&mut e, &mut c, &mut NoPolicy, 5_000);
            (e.now_ns(), e.stats().accesses, c.memtable_fill())
        };
        assert_eq!(run(), run());
    }
}

//! Synthetic cloud workloads for the Thermostat (ASPLOS'17) reproduction.
//!
//! The paper evaluates six applications (§4.3): Aerospike, Cassandra,
//! Redis, TPCC-on-MySQL, Cloudsuite in-memory analytics, and Cloudsuite
//! web search. The real applications cannot run inside a user-space
//! simulator, so this crate provides generators that reproduce each
//! application's *memory behaviour* — footprint composition (Table 2),
//! access skew (YCSB Zipfian, Redis's 0.01%/90% hotspot), read/write
//! mixes, file-mapped fractions, growth over time (Cassandra Memtables,
//! Spark RDD materialization), and compute intensity — because those are
//! the properties Thermostat's classification actually observes.
//!
//! Build any app via the [`AppId`] registry:
//!
//! ```
//! use thermo_workloads::{AppId, AppConfig};
//! use thermo_sim::{Engine, SimConfig, run_ops, NoPolicy};
//!
//! let mut engine = Engine::new(SimConfig::paper_defaults(256 << 20, 256 << 20));
//! let mut app = AppId::Redis.build(AppConfig { scale: 512, ..AppConfig::default() });
//! app.init(&mut engine);
//! let out = run_ops(&mut engine, app.as_mut(), &mut NoPolicy, 1_000);
//! assert_eq!(out.ops, 1_000);
//! ```

#![warn(missing_docs)]
pub mod aerospike;
pub mod analytics;
pub mod cassandra;
pub mod colocate;
pub mod common;
pub mod dist;
pub mod redis;
pub mod registry;
pub mod synthetic;
pub mod tpcc;
pub mod websearch;

pub use aerospike::Aerospike;
pub use analytics::Analytics;
pub use cassandra::Cassandra;
pub use colocate::{Colocated, Tenant};
pub use common::{AppConfig, Region};
pub use dist::{fnv_mix, HotspotDist, KeyDist, ScrambledZipfian, UniformDist, ZipfianDist};
pub use redis::Redis;
pub use registry::{AppId, AppSpec, ParseAppError, SPECS};
pub use synthetic::{Pattern, RegionSpec, Synthetic};
pub use tpcc::Tpcc;
pub use websearch::WebSearch;

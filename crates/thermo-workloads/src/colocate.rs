//! Workload colocation: run several tenants inside one simulated guest.
//!
//! The paper's motivation is the *cloud provider's* perspective (§1: the
//! provider "may wish to transparently substitute cheap memory for DRAM"
//! across tenants it cannot modify). [`Colocated`] interleaves multiple
//! generators in one address space, sharing the TLB, LLC and both memory
//! tiers — so one Thermostat instance manages the mixed footprint exactly
//! as the host OS would across containers.

use thermo_sim::{Access, Engine, FootprintInfo, Workload};
use thermo_util::rng::SmallRng;
use thermo_util::rng::{Rng, SeedableRng};

/// One tenant: a workload plus its share of the operation stream.
pub struct Tenant {
    /// The tenant's workload.
    pub workload: Box<dyn Workload>,
    /// Relative share of operations (weights are normalized).
    pub weight: u32,
}

impl Tenant {
    /// Creates a tenant with the given op-stream weight.
    pub fn new(workload: Box<dyn Workload>, weight: u32) -> Self {
        Self { workload, weight }
    }
}

/// Interleaves tenants' operations by weighted random choice.
///
/// A tenant whose workload finishes (returns `None`) is retired; the
/// colocated workload ends when every tenant has finished.
pub struct Colocated {
    tenants: Vec<Tenant>,
    finished: Vec<bool>,
    rng: SmallRng,
    name: String,
}

impl Colocated {
    /// Builds a colocated workload from `tenants`.
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is empty or all weights are zero.
    pub fn new(tenants: Vec<Tenant>, seed: u64) -> Self {
        assert!(!tenants.is_empty(), "need at least one tenant");
        assert!(
            tenants.iter().any(|t| t.weight > 0),
            "need a positive weight"
        );
        let name = tenants
            .iter()
            .map(|t| t.workload.name().to_string())
            .collect::<Vec<_>>()
            .join("+");
        let finished = vec![false; tenants.len()];
        Self {
            tenants,
            finished,
            rng: SmallRng::seed_from_u64(seed ^ 0xc01c),
            name,
        }
    }

    /// Number of tenants still running.
    pub fn live_tenants(&self) -> usize {
        self.finished.iter().filter(|f| !**f).count()
    }
}

impl Workload for Colocated {
    fn name(&self) -> &str {
        &self.name
    }

    fn init(&mut self, engine: &mut Engine) {
        for t in &mut self.tenants {
            t.workload.init(engine);
        }
    }

    fn next_op(&mut self, now_ns: u64, accesses: &mut Vec<Access>) -> Option<u64> {
        loop {
            let live_weight: u32 = self
                .tenants
                .iter()
                .zip(&self.finished)
                .filter(|(_, f)| !**f)
                .map(|(t, _)| t.weight)
                .sum();
            if live_weight == 0 {
                return None;
            }
            let mut pick = self.rng.gen_range(0..live_weight);
            let idx = self
                .tenants
                .iter()
                .enumerate()
                .filter(|(i, _)| !self.finished[*i])
                .find(|(_, t)| {
                    if pick < t.weight {
                        true
                    } else {
                        pick -= t.weight;
                        false
                    }
                })
                .map(|(i, _)| i)
                .expect("live weight positive");
            match self.tenants[idx].workload.next_op(now_ns, accesses) {
                Some(compute) => return Some(compute),
                None => self.finished[idx] = true, // tenant done; try another
            }
        }
    }

    fn footprint(&self) -> FootprintInfo {
        let mut f = FootprintInfo::default();
        for t in &self.tenants {
            let tf = t.workload.footprint();
            f.anon_bytes += tf.anon_bytes;
            f.file_bytes += tf.file_bytes;
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AppConfig, AppId, Pattern, RegionSpec, Synthetic};
    use thermo_sim::{run_ops, NoPolicy, SimConfig};

    fn engine() -> Engine {
        Engine::new(SimConfig::paper_defaults(256 << 20, 256 << 20))
    }

    #[test]
    fn two_tenants_share_one_machine() {
        let mut e = engine();
        let cfg = AppConfig {
            scale: 512,
            seed: 4,
            read_pct: 95,
        };
        let mut c = Colocated::new(
            vec![
                Tenant::new(AppId::Redis.build(cfg), 3),
                Tenant::new(AppId::WebSearch.build(cfg), 1),
            ],
            7,
        );
        c.init(&mut e);
        let rss_after_init = e.rss_bytes();
        assert!(rss_after_init > 30 << 20, "both tenants must be resident");
        let out = run_ops(&mut e, &mut c, &mut NoPolicy, 10_000);
        assert_eq!(out.ops, 10_000);
        assert_eq!(c.live_tenants(), 2);
    }

    #[test]
    fn finished_tenant_is_retired_and_stream_continues() {
        let mut e = engine();
        // A tiny finite tenant plus an endless one.
        let finite = Synthetic::new(
            vec![RegionSpec::anon("a", 1 << 20, 1, Pattern::Sequential)],
            100,
            1,
        );
        struct Finite(Synthetic, u32);
        impl Workload for Finite {
            fn name(&self) -> &str {
                "finite"
            }
            fn init(&mut self, e: &mut Engine) {
                self.0.init(e);
            }
            fn next_op(&mut self, n: u64, a: &mut Vec<Access>) -> Option<u64> {
                if self.1 == 0 {
                    return None;
                }
                self.1 -= 1;
                self.0.next_op(n, a)
            }
        }
        let endless = Synthetic::new(
            vec![RegionSpec::anon("b", 1 << 20, 1, Pattern::Uniform)],
            100,
            2,
        );
        let mut c = Colocated::new(
            vec![
                Tenant::new(Box::new(Finite(finite, 50)), 1),
                Tenant::new(Box::new(endless), 1),
            ],
            9,
        );
        c.init(&mut e);
        let out = run_ops(&mut e, &mut c, &mut NoPolicy, 5_000);
        assert_eq!(out.ops, 5_000, "endless tenant keeps the stream alive");
        assert_eq!(c.live_tenants(), 1);
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn zero_weights_rejected() {
        let cfg = AppConfig {
            scale: 512,
            seed: 4,
            read_pct: 95,
        };
        Colocated::new(vec![Tenant::new(AppId::Redis.build(cfg), 0)], 1);
    }
}

//! MySQL/TPC-C-like transactional database.
//!
//! Paper configuration (§4.3): OLTP-Bench TPCC at scale factor 320 on
//! MySQL, ~6GB resident plus 3.5GB file-mapped (InnoDB data files through
//! the hugetmpfs page cache). The paper's key observation (§5, Figure 6):
//! *"The largest table in the TPCC schema, the LINEITEM table, is
//! infrequently read. As a result, much of TPCC's footprint (about 40-50%)
//! is cold"*, and the cold fraction **saturates** near 45% no matter how
//! much slowdown is tolerated (Figure 11) because every remaining page is
//! hot.

use crate::common::{percent, AppConfig, Region};
use crate::dist::{fnv_mix, KeyDist, ScrambledZipfian, ZipfianDist};
use thermo_sim::{Access, Engine, FootprintInfo, Workload};
use thermo_util::rng::SeedableRng;
use thermo_util::rng::SmallRng;

/// Hot tables: WAREHOUSE, DISTRICT, NEW_ORDER working set.
const PAPER_HOT_TABLES: u64 = 256_000_000;
/// Mid tables: CUSTOMER, STOCK — Zipfian access.
const PAPER_MID_TABLES: u64 = 2_750_000_000;
/// The cold giant: HISTORY/ORDER_LINE-class append-mostly data.
const PAPER_COLD_TABLES: u64 = 3_000_000_000;
/// InnoDB data files in the page cache.
const PAPER_BUFFER_FILES: u64 = 3_500_000_000;
/// Redo log ring.
const PAPER_REDO_LOG: u64 = 128_000_000;
/// Row slot in the mid tables.
const ROW_SLOT: u64 = 384;

/// The TPCC-like generator.
#[derive(Debug)]
pub struct Tpcc {
    cfg: AppConfig,
    rng: SmallRng,
    hot: Option<Region>,
    mid: Option<Region>,
    cold: Option<Region>,
    files: Option<Region>,
    redo: Option<Region>,
    dist: Option<ScrambledZipfian>,
    file_dist: Option<ZipfianDist>,
    append_cursor: u64,
    redo_cursor: u64,
    compute_ns: u64,
}

impl Tpcc {
    /// Creates the generator (TPCC's mix is fixed; `cfg.read_pct` is
    /// ignored, matching the benchmark's defined transaction blend).
    pub fn new(cfg: AppConfig) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(cfg.seed ^ 0x79cc),
            cfg,
            hot: None,
            mid: None,
            cold: None,
            files: None,
            redo: None,
            dist: None,
            file_dist: None,
            append_cursor: 0,
            redo_cursor: 0,
            compute_ns: 12_000,
        }
    }
}

impl Workload for Tpcc {
    fn name(&self) -> &str {
        "mysql-tpcc"
    }

    fn init(&mut self, engine: &mut Engine) {
        let hot = Region::map(
            engine,
            self.cfg.scaled(PAPER_HOT_TABLES),
            true,
            false,
            "tpcc-hot",
        );
        let mid = Region::map(
            engine,
            self.cfg.scaled(PAPER_MID_TABLES),
            true,
            false,
            "tpcc-mid",
        );
        let cold = Region::map(
            engine,
            self.cfg.scaled(PAPER_COLD_TABLES),
            true,
            false,
            "tpcc-lineitem",
        );
        let files = Region::map(
            engine,
            self.cfg.scaled(PAPER_BUFFER_FILES),
            true,
            true,
            "tpcc-ibd",
        );
        let redo = Region::map(
            engine,
            self.cfg.scaled(PAPER_REDO_LOG),
            true,
            true,
            "tpcc-redo",
        );
        // Database load phase populates everything.
        hot.warm(engine);
        mid.warm(engine);
        cold.warm(engine);
        files.warm(engine);
        redo.warm(engine);
        self.dist = Some(ScrambledZipfian::new(mid.n_slots(ROW_SLOT)));
        self.file_dist = Some(ZipfianDist::new(files.n_slots(4096), 0.8));
        self.hot = Some(hot);
        self.mid = Some(mid);
        self.cold = Some(cold);
        self.files = Some(files);
        self.redo = Some(redo);
    }

    fn next_op(&mut self, _now_ns: u64, accesses: &mut Vec<Access>) -> Option<u64> {
        let hot = self.hot.expect("init first");
        let mid = self.mid.expect("init first");
        let cold = self.cold.expect("init first");
        let files = self.files.expect("init first");
        let redo = self.redo.expect("init first");
        let warehouse_pick = self.rng_next();
        let dist = self.dist.as_ref().expect("init first");
        let file_dist = self.file_dist.as_ref().expect("init first");

        // One TPCC transaction (NewOrder-like blend):
        // warehouse/district reads + update.
        let w = fnv_mix(warehouse_pick) % hot.n_slots(128);
        accesses.push(Access::read(hot.slot(w, 128)));
        accesses.push(Access::write(hot.slot(w ^ 1, 128)));
        // customer/stock rows (Zipfian).
        for _ in 0..3 {
            let k = dist.sample(&mut self.rng);
            let write = percent(&mut self.rng, 40);
            let va = mid.slot(k, ROW_SLOT);
            accesses.push(if write {
                Access::write(va)
            } else {
                Access::read(va)
            });
        }
        // order-line/history append. The insert point rings over a small
        // active tail; rows behind it are never read again (the paper:
        // "the LINEITEM table is infrequently read").
        let tail = (16u64 << 20).min(cold.bytes);
        let off = cold.bytes - tail + self.append_cursor;
        accesses.push(Access::write(cold.at(off)));
        self.append_cursor = (self.append_cursor + 256) % tail;
        // buffer-pool page reads from the data files.
        let fp = file_dist.sample(&mut self.rng);
        accesses.push(Access::read(files.slot(fp, 4096)));
        // redo log append.
        accesses.push(Access::write(redo.at(self.redo_cursor)));
        self.redo_cursor = thermo_util::fastdiv::wrap_add(self.redo_cursor, 64, redo.bytes);

        Some(self.compute_ns)
    }

    fn footprint(&self) -> FootprintInfo {
        FootprintInfo {
            anon_bytes: self.cfg.scaled(PAPER_HOT_TABLES)
                + self.cfg.scaled(PAPER_MID_TABLES)
                + self.cfg.scaled(PAPER_COLD_TABLES),
            file_bytes: self.cfg.scaled(PAPER_BUFFER_FILES) + self.cfg.scaled(PAPER_REDO_LOG),
        }
    }
}

impl Tpcc {
    fn rng_next(&mut self) -> u64 {
        use thermo_util::rng::Rng;
        self.rng.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermo_sim::{run_ops, NoPolicy, SimConfig};

    fn setup() -> (Engine, Tpcc) {
        let e = Engine::new(SimConfig::paper_defaults(256 << 20, 256 << 20));
        let t = Tpcc::new(AppConfig {
            scale: 512,
            seed: 4,
            read_pct: 95,
        });
        (e, t)
    }

    #[test]
    fn runs_transactions() {
        let (mut e, mut t) = setup();
        t.init(&mut e);
        let out = run_ops(&mut e, &mut t, &mut NoPolicy, 10_000);
        assert_eq!(out.ops, 10_000);
        // Every transaction writes (redo log at minimum).
        assert!(e.stats().writes >= 10_000);
    }

    #[test]
    fn lineitem_region_goes_cold_after_append_passes() {
        let mut cfg = SimConfig::paper_defaults(256 << 20, 256 << 20);
        cfg.track_true_access = true;
        let mut e = Engine::new(cfg);
        let mut t = Tpcc::new(AppConfig {
            scale: 512,
            seed: 4,
            read_pct: 95,
        });
        t.init(&mut e);
        e.reset_true_access();
        run_ops(&mut e, &mut t, &mut NoPolicy, 20_000);
        // The cold region sees only the sequential append cursor: pages
        // behind the cursor get no further traffic. Count distinct cold
        // pages touched vs its size.
        let cold = t.cold.unwrap();
        let touched = e
            .true_access_counts()
            .keys()
            .filter(|v| {
                let va = v.addr();
                va >= cold.base && va < thermo_mem::VirtAddr(cold.base.0 + cold.bytes)
            })
            .count() as u64;
        let cold_pages = cold.bytes / 4096;
        // 20k appends * 256B = ~5MB of a ~6MB scaled region; still, each
        // page is touched in one pass and then left alone — the traffic is
        // a moving point, not a working set.
        assert!(touched <= cold_pages, "append traffic must stay sequential");
    }

    #[test]
    fn footprint_split_matches_table2() {
        let (mut e, mut t) = setup();
        t.init(&mut e);
        let fp = t.footprint();
        assert!(
            fp.anon_bytes > fp.file_bytes,
            "RSS 6GB > file 3.5GB in Table 2"
        );
        assert!(e.process().file_backed_bytes() > 0);
    }

    #[test]
    fn deterministic() {
        let run = || {
            let (mut e, mut t) = setup();
            t.init(&mut e);
            run_ops(&mut e, &mut t, &mut NoPolicy, 3_000);
            (e.now_ns(), e.stats().accesses)
        };
        assert_eq!(run(), run());
    }
}

//! Shared scaffolding for the six application generators.

use thermo_mem::VirtAddr;
use thermo_sim::Engine;
use thermo_util::rng::SmallRng;

/// Scaling and seeding knobs shared by every generator.
///
/// The paper runs multi-GB footprints (Table 2); the reproduction scales
/// them down by [`AppConfig::scale`] together with the LLC so the
/// footprint:cache:TLB-reach ratios stay in the studied regime (see
/// DESIGN.md §1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppConfig {
    /// Footprint divisor relative to the paper's Table 2 (default 16:
    /// Redis's 17.2GB becomes ~1.1GB).
    pub scale: u64,
    /// RNG seed; equal seeds give bit-identical runs.
    pub seed: u64,
    /// Read percentage of the YCSB-style mix (95 = the paper's read-heavy
    /// load, 5 = write-heavy).
    pub read_pct: u8,
}

impl Default for AppConfig {
    fn default() -> Self {
        Self {
            scale: 16,
            seed: 0x7e57_0001,
            read_pct: 95,
        }
    }
}

impl AppConfig {
    /// Scales a paper-reported byte count down by `self.scale`, rounded up
    /// to 2MB so regions stay huge-page friendly.
    pub fn scaled(&self, paper_bytes: u64) -> u64 {
        let b = paper_bytes / self.scale;
        (b + (2 << 20) - 1) & !((2 << 20) - 1)
    }
}

/// A mapped region plus address arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First byte.
    pub base: VirtAddr,
    /// Length in bytes.
    pub bytes: u64,
    /// Precomputed magic for the `% bytes` wrap in [`at`](Self::at) — the
    /// hottest divide in every workload's address generation; exact, so
    /// addresses are bit-identical to the hardware modulo.
    wrap: thermo_util::fastdiv::FastMod,
}

impl Region {
    /// Maps a region in `engine` and returns the handle.
    pub fn map(engine: &mut Engine, bytes: u64, thp: bool, file_backed: bool, name: &str) -> Self {
        let base = engine.mmap(bytes, thp, true, file_backed, name);
        Self {
            base,
            bytes,
            wrap: thermo_util::fastdiv::FastMod::new(bytes),
        }
    }

    /// Address at byte offset `off` (wraps around the region so callers can
    /// index with unreduced hashes).
    #[inline]
    pub fn at(&self, off: u64) -> VirtAddr {
        self.base + self.wrap.rem(off)
    }

    /// Reduces an unbounded offset (a hash) into `[0, bytes)` — exactly
    /// `off % bytes`, via the precomputed magic.
    #[inline]
    pub fn reduce(&self, off: u64) -> u64 {
        self.wrap.rem(off)
    }

    /// Cache-line-aligned address of slot `i` with `slot_bytes` spacing.
    pub fn slot(&self, i: u64, slot_bytes: u64) -> VirtAddr {
        self.at(i.wrapping_mul(slot_bytes)).align_down_to_line()
    }

    /// Cache-line-aligned address of line `line` within slot `i`, wrapping
    /// around the region (so multi-line values at the last slot stay inside
    /// the mapping).
    pub fn slot_line(&self, i: u64, slot_bytes: u64, line: u64) -> VirtAddr {
        VirtAddr(
            self.at(i.wrapping_mul(slot_bytes).wrapping_add(line * 64))
                .0
                & !63,
        )
    }

    /// Number of slots of `slot_bytes` that fit.
    pub fn n_slots(&self, slot_bytes: u64) -> u64 {
        self.bytes / slot_bytes
    }

    /// Touches one byte per 4KB page to demand-page the whole region
    /// (the load/warm-up phase the paper runs before measuring).
    pub fn warm(&self, engine: &mut Engine) {
        let mut off = 0;
        while off < self.bytes {
            engine.access(self.base + off, true);
            off += 4096;
        }
    }
}

trait AlignExt {
    fn align_down_to_line(self) -> VirtAddr;
}

impl AlignExt for VirtAddr {
    fn align_down_to_line(self) -> VirtAddr {
        VirtAddr(self.0 & !63)
    }
}

/// Draws true with probability `pct`/100.
pub fn percent(rng: &mut SmallRng, pct: u8) -> bool {
    use thermo_util::rng::Rng;
    rng.gen_range(0..100u8) < pct
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermo_sim::SimConfig;
    use thermo_util::rng::SeedableRng;

    #[test]
    fn scaled_rounds_to_huge() {
        let cfg = AppConfig {
            scale: 16,
            ..Default::default()
        };
        let s = cfg.scaled(17_200_000_000);
        assert_eq!(s % (2 << 20), 0);
        assert!(s >= 17_200_000_000 / 16);
    }

    #[test]
    fn region_addressing() {
        let r = Region {
            base: VirtAddr(1 << 32),
            bytes: 4096,
            wrap: thermo_util::fastdiv::FastMod::new(4096),
        };
        assert_eq!(r.at(0), r.base);
        assert_eq!(r.at(4096), r.base); // wraps
        assert_eq!(r.slot(1, 100).0 % 64, 0);
        assert_eq!(r.n_slots(256), 16);
    }

    #[test]
    fn warm_pages_in_whole_region() {
        let mut e = Engine::new(SimConfig::paper_defaults(64 << 20, 64 << 20));
        let r = Region::map(&mut e, 4 << 20, true, false, "r");
        r.warm(&mut e);
        assert_eq!(e.rss_bytes(), 4 << 20);
    }

    #[test]
    fn percent_edges() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| percent(&mut rng, 0)));
        assert!((0..100).all(|_| percent(&mut rng, 100)));
    }
}

//! Property tests across all six generators: any seed and mix must produce
//! a workload that only touches mapped memory, is deterministic, and keeps
//! its declared footprint shape.

use thermo_sim::{run_ops, Engine, NoPolicy, SimConfig};
use thermo_util::forall;
use thermo_util::proptest_lite::{any, range};
use thermo_workloads::{AppConfig, AppId};

fn engine() -> Engine {
    Engine::new(SimConfig::paper_defaults(384 << 20, 128 << 20))
}

/// Every app, any seed/mix: 5k ops execute without a simulated
/// segfault, and throughput is positive.
#[test]
fn apps_never_touch_unmapped_memory() {
    forall!(cases = 12,
        (app_idx in range(0usize..6)),
        (seed in any::<u64>()),
        (read_pct in range(0u8..101)) => {
        let app = AppId::ALL[app_idx];
        let mut e = engine();
        let mut w = app.build(AppConfig { scale: 512, seed, read_pct });
        w.init(&mut e);
        let out = run_ops(&mut e, w.as_mut(), &mut NoPolicy, 5_000);
        assert!(out.ops > 0);
        assert!(out.ops_per_sec() > 0.0);
        // RSS within the mapped virtual space.
        assert!(e.rss_bytes() <= e.process().virtual_bytes());
    });
}

/// Determinism holds for every app and seed: two identical runs give
/// bit-identical engine state.
#[test]
fn apps_are_deterministic() {
    forall!(cases = 12, (app_idx in range(0usize..6)), (seed in any::<u64>()) => {
        let app = AppId::ALL[app_idx];
        let run = || {
            let mut e = engine();
            let mut w = app.build(AppConfig { scale: 512, seed, read_pct: 95 });
            w.init(&mut e);
            run_ops(&mut e, w.as_mut(), &mut NoPolicy, 2_000);
            (e.now_ns(), e.stats().accesses, e.stats().llc_misses, e.tlb_stats().misses)
        };
        assert_eq!(run(), run());
    });
}

/// Different seeds actually change the access stream (no accidentally
/// seed-blind generator). In-memory analytics is excluded: its stream
/// is a deterministic scan plus model updates that, at this miniature
/// scale, stay entirely within LLC/TLB reach — aggregate statistics are
/// then genuinely seed-invariant even though addresses differ.
#[test]
fn seeds_vary_the_stream() {
    forall!(cases = 12,
        (app_idx in range(0usize..6)),
        (s1 in range(0u64..1000)),
        (delta in range(1u64..1000)) => {
        let app = AppId::ALL[app_idx];
        if app == AppId::InMemoryAnalytics {
            return; // see doc comment: genuinely seed-invariant at this scale
        }
        let run = |seed: u64| {
            let mut e = engine();
            let mut w = app.build(AppConfig { scale: 512, seed, read_pct: 50 });
            w.init(&mut e);
            run_ops(&mut e, w.as_mut(), &mut NoPolicy, 3_000);
            (e.stats().llc_misses, e.tlb_stats().misses, e.stats().writes)
        };
        let a = run(s1);
        let b = run(s1 + delta);
        assert_ne!(a, b, "seed change must perturb {app}");
    });
}

//! Property tests across all six generators: any seed and mix must produce
//! a workload that only touches mapped memory, is deterministic, and keeps
//! its declared footprint shape.

use proptest::prelude::*;
use thermo_sim::{run_ops, Engine, NoPolicy, SimConfig};
use thermo_workloads::{AppConfig, AppId};

fn engine() -> Engine {
    Engine::new(SimConfig::paper_defaults(384 << 20, 128 << 20))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every app, any seed/mix: 5k ops execute without a simulated
    /// segfault, and throughput is positive.
    #[test]
    fn apps_never_touch_unmapped_memory(
        app_idx in 0usize..6,
        seed in any::<u64>(),
        read_pct in 0u8..=100,
    ) {
        let app = AppId::ALL[app_idx];
        let mut e = engine();
        let mut w = app.build(AppConfig { scale: 512, seed, read_pct });
        w.init(&mut e);
        let out = run_ops(&mut e, w.as_mut(), &mut NoPolicy, 5_000);
        prop_assert!(out.ops > 0);
        prop_assert!(out.ops_per_sec() > 0.0);
        // RSS within the mapped virtual space.
        prop_assert!(e.rss_bytes() <= e.process().virtual_bytes());
    }

    /// Determinism holds for every app and seed: two identical runs give
    /// bit-identical engine state.
    #[test]
    fn apps_are_deterministic(app_idx in 0usize..6, seed in any::<u64>()) {
        let app = AppId::ALL[app_idx];
        let run = || {
            let mut e = engine();
            let mut w = app.build(AppConfig { scale: 512, seed, read_pct: 95 });
            w.init(&mut e);
            run_ops(&mut e, w.as_mut(), &mut NoPolicy, 2_000);
            (e.now_ns(), e.stats().accesses, e.stats().llc_misses, e.tlb_stats().misses)
        };
        prop_assert_eq!(run(), run());
    }

    /// Different seeds actually change the access stream (no accidentally
    /// seed-blind generator). In-memory analytics is excluded: its stream
    /// is a deterministic scan plus model updates that, at this miniature
    /// scale, stay entirely within LLC/TLB reach — aggregate statistics are
    /// then genuinely seed-invariant even though addresses differ.
    #[test]
    fn seeds_vary_the_stream(app_idx in 0usize..6, s1 in 0u64..1000, delta in 1u64..1000) {
        let app = AppId::ALL[app_idx];
        prop_assume!(app != AppId::InMemoryAnalytics);
        let run = |seed: u64| {
            let mut e = engine();
            let mut w = app.build(AppConfig { scale: 512, seed, read_pct: 50 });
            w.init(&mut e);
            run_ops(&mut e, w.as_mut(), &mut NoPolicy, 3_000);
            (e.stats().llc_misses, e.tlb_stats().misses, e.stats().writes)
        };
        let a = run(s1);
        let b = run(s1 + delta);
        prop_assert_ne!(a, b, "seed change must perturb {}", app);
    }
}

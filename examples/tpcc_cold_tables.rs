//! Scenario: TPCC on MySQL — the paper's best case for tiering. The
//! LINEITEM/HISTORY-class tables are written once and almost never read,
//! so 40-50% of the footprint is safely placeable, and the cold fraction
//! SATURATES: raising the tolerable slowdown does not find more cold data
//! (Figure 11's distinctive MySQL row).
//!
//! Run with: `cargo run --release --example tpcc_cold_tables`

use thermostat_suite::core::{Daemon, ThermostatConfig};
use thermostat_suite::mem::CostModel;
use thermostat_suite::sim::{run_for, Engine, NoPolicy, SimConfig};
use thermostat_suite::workloads::{AppConfig, AppId};

const DURATION_NS: u64 = 40_000_000_000;
const SCALE: u64 = 64;

fn run_at(slowdown_pct: f64) -> (f64, f64) {
    let mut cfg = SimConfig::paper_defaults(512 << 20, 512 << 20);
    cfg.vpid = thermostat_suite::vm::Vpid(1);
    let mut engine = Engine::new(cfg);
    let mut w = AppId::MysqlTpcc.build(AppConfig {
        scale: SCALE,
        seed: 11,
        read_pct: 95,
    });
    w.init(&mut engine);
    let mut daemon = Daemon::new(ThermostatConfig {
        tolerable_slowdown_pct: slowdown_pct,
        sampling_period_ns: 1_000_000_000,
        ..ThermostatConfig::paper_defaults()
    });
    let out = run_for(&mut engine, w.as_mut(), &mut daemon, DURATION_NS);
    (
        engine.footprint_breakdown().cold_fraction(),
        out.ops_per_sec(),
    )
}

fn main() {
    // Baseline throughput for reference.
    let mut engine = Engine::new(SimConfig::paper_defaults(512 << 20, 512 << 20));
    let mut w = AppId::MysqlTpcc.build(AppConfig {
        scale: SCALE,
        seed: 11,
        read_pct: 95,
    });
    w.init(&mut engine);
    let base = run_for(&mut engine, w.as_mut(), &mut NoPolicy, DURATION_NS);
    println!("baseline: {:.0} transactions/s\n", base.ops_per_sec());

    println!("tolerable_slowdown  cold_fraction  throughput  savings(0.25x)");
    let mut last_cold = 0.0;
    for slowdown in [3.0, 6.0, 10.0] {
        let (cold, tput) = run_at(slowdown);
        let savings = CostModel::new(0.25).evaluate(cold).savings_fraction;
        println!(
            "{:>17.0}%  {:>12.1}%  {:>8.0}/s  {:>13.1}%",
            slowdown,
            cold * 100.0,
            tput,
            savings * 100.0
        );
        last_cold = cold;
    }
    println!(
        "\nsaturation: the cold fraction plateaus near the size of the append-only\n\
         tables (~{:.0}% here) because every remaining page is genuinely hot —\n\
         the paper's Figure 11 observation for MySQL-TPCC.",
        last_cold * 100.0
    );
}

//! Scenario: a Redis-like store under the paper's hotspot load (0.01% of
//! keys receive 90% of traffic) — the workload the paper uses to show both
//! the largest huge-page benefit (Table 1) and the smallest safely-placeable
//! cold fraction (Figure 8).
//!
//! This example runs three configurations and compares them:
//!  1. all-DRAM with THP (the performance baseline),
//!  2. all-DRAM with THP disabled (why huge pages matter under nested
//!     paging),
//!  3. THP + Thermostat managing a two-tier memory.
//!
//! Run with: `cargo run --release --example redis_hotspot`

use thermostat_suite::core::{Daemon, ThermostatConfig};
use thermostat_suite::sim::{run_for, Engine, NoPolicy, SimConfig};
use thermostat_suite::workloads::{AppConfig, AppId};

const DURATION_NS: u64 = 30_000_000_000;
const SCALE: u64 = 64; // 1/64 of the paper's 17.2GB footprint

fn engine(thp: bool) -> Engine {
    let mut cfg = SimConfig::paper_defaults(512 << 20, 512 << 20);
    cfg.thp_enabled = thp;
    Engine::new(cfg)
}

fn app_cfg() -> AppConfig {
    AppConfig {
        scale: SCALE,
        seed: 7,
        read_pct: 90,
    }
}

fn main() {
    // 1. THP baseline.
    let mut e1 = engine(true);
    let mut w = AppId::Redis.build(app_cfg());
    w.init(&mut e1);
    let thp = run_for(&mut e1, w.as_mut(), &mut NoPolicy, DURATION_NS);
    println!("THP baseline:      {:>9.0} ops/s", thp.ops_per_sec());

    // 2. 4KB pages everywhere: nested paging makes walks 24 steps.
    let mut e2 = engine(false);
    let mut w = AppId::Redis.build(app_cfg());
    w.init(&mut e2);
    let small = run_for(&mut e2, w.as_mut(), &mut NoPolicy, DURATION_NS);
    println!(
        "4KB pages:         {:>9.0} ops/s ({:.0}% slower — the Table 1 effect)",
        small.ops_per_sec(),
        (thp.ops_per_sec() / small.ops_per_sec() - 1.0) * 100.0
    );

    // 3. THP + Thermostat on two tiers.
    let mut e3 = engine(true);
    let mut w = AppId::Redis.build(app_cfg());
    w.init(&mut e3);
    let mut daemon = Daemon::new(ThermostatConfig {
        sampling_period_ns: 1_000_000_000,
        ..ThermostatConfig::paper_defaults()
    });
    let managed = run_for(&mut e3, w.as_mut(), &mut daemon, DURATION_NS);
    let fb = e3.footprint_breakdown();
    println!(
        "THP + Thermostat:  {:>9.0} ops/s, {:.0}% cold ({:.1} MB in slow memory)",
        managed.ops_per_sec(),
        fb.cold_fraction() * 100.0,
        fb.cold() as f64 / 1e6
    );
    println!(
        "slowdown vs THP:   {:+.2}% (target {:.0}%); slow-memory faults observed: {}",
        (thp.ops_per_sec() / managed.ops_per_sec() - 1.0) * 100.0,
        daemon.config().tolerable_slowdown_pct,
        e3.stats().slow_trap_faults
    );
    println!("hotspot lesson: only the uniform residue is placeable — hot keys pin most pages hot");
}

//! Scenario: capacity planning with the cgroup knob. A cloud operator
//! picks a tolerable slowdown per tenant; Thermostat turns it into a
//! slow-memory access budget (x / (100·ts), §3.4) and converts tolerance
//! into memory-cost savings. This example sweeps the knob for Cassandra
//! (write-heavy, like the paper's Figure 5) and prints the trade-off
//! curve, including the effect of slower (cheaper) device tiers.
//!
//! Run with: `cargo run --release --example slowdown_sweep`

use thermostat_suite::core::{Daemon, ThermostatConfig};
use thermostat_suite::mem::CostModel;
use thermostat_suite::sim::{run_for, Engine, NoPolicy, SimConfig};
use thermostat_suite::workloads::{AppConfig, AppId};

const DURATION_NS: u64 = 30_000_000_000;
const SCALE: u64 = 64;

fn build() -> (Engine, Box<dyn thermostat_suite::sim::Workload>) {
    let mut engine = Engine::new(SimConfig::paper_defaults(512 << 20, 512 << 20));
    let mut w = AppId::Cassandra.build(AppConfig {
        scale: SCALE,
        seed: 3,
        read_pct: 5,
    });
    w.init(&mut engine);
    (engine, w)
}

fn main() {
    let (mut engine, mut w) = build();
    let base = run_for(&mut engine, w.as_mut(), &mut NoPolicy, DURATION_NS);

    println!(
        "Cassandra write-heavy, {} virtual seconds per point\n",
        DURATION_NS / 1_000_000_000
    );
    println!("slowdown_target  budget(acc/s)  cold_frac  actual_slowdown  savings(0.25x)");
    for target in [1.0, 3.0, 6.0, 10.0] {
        let (mut engine, mut w) = build();
        let cfg = ThermostatConfig {
            tolerable_slowdown_pct: target,
            sampling_period_ns: 1_000_000_000,
            ..ThermostatConfig::paper_defaults()
        };
        let budget = cfg.target_slow_access_rate();
        let mut daemon = Daemon::new(cfg);
        let out = run_for(&mut engine, w.as_mut(), &mut daemon, DURATION_NS);
        let cold = engine.footprint_breakdown().cold_fraction();
        let actual = (base.ops_per_sec() / out.ops_per_sec() - 1.0) * 100.0;
        let savings = CostModel::new(0.25).evaluate(cold).savings_fraction * 100.0;
        println!(
            "{:>14.0}%  {:>13.0}  {:>8.1}%  {:>14.2}%  {:>13.1}%",
            target,
            budget,
            cold * 100.0,
            actual,
            savings
        );
    }
    println!("\nmore tolerance -> more pages fit the access-rate budget -> more savings,");
    println!("exactly the Figure 11 trend; the budget line is the §3.4 translation.");
}

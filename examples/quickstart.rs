//! Quickstart: build a two-tier machine, run a skewed workload under the
//! Thermostat daemon, and watch cold data move to slow memory while the
//! slowdown stays within the target.
//!
//! Run with: `cargo run --release --example quickstart`

use thermo_util::rng::SmallRng;
use thermo_util::rng::{Rng, SeedableRng};
use thermostat_suite::core::{Daemon, ThermostatConfig};
use thermostat_suite::mem::VirtAddr;
use thermostat_suite::sim::{run_for, Access, Engine, NoPolicy, SimConfig, Workload};

/// A minimal skewed application over a 64MB heap: 90% of accesses hit the
/// first eighth, 10% spread over the first half, and the second half is
/// touched only during the load phase — archival data waiting for
/// Thermostat to notice.
struct Skewed {
    heap: VirtAddr,
    bytes: u64,
    rng: SmallRng,
}

impl Workload for Skewed {
    fn name(&self) -> &str {
        "skewed"
    }

    fn init(&mut self, engine: &mut Engine) {
        self.heap = engine.mmap(self.bytes, true, true, false, "heap");
        // Touch everything once (load phase).
        let mut off = 0;
        while off < self.bytes {
            engine.access(self.heap + off, true);
            off += 4096;
        }
    }

    fn next_op(&mut self, _now: u64, acc: &mut Vec<Access>) -> Option<u64> {
        let hot = self.rng.gen::<f64>() < 0.9;
        let span = if hot { self.bytes / 8 } else { self.bytes / 2 };
        let off = self.rng.gen_range(0..span) & !63;
        acc.push(Access::read(self.heap + off));
        Some(400)
    }
}

fn main() {
    let make = || {
        let mut engine = Engine::new(SimConfig::paper_defaults(128 << 20, 128 << 20));
        let mut app = Skewed {
            heap: VirtAddr(0),
            bytes: 64 << 20,
            rng: SmallRng::seed_from_u64(42),
        };
        app.init(&mut engine);
        (engine, app)
    };
    let duration = 30_000_000_000; // 30 virtual seconds

    // Baseline: everything stays in DRAM.
    let (mut engine, mut app) = make();
    let baseline = run_for(&mut engine, &mut app, &mut NoPolicy, duration);
    println!(
        "baseline:   {:>9.0} ops/s (all-DRAM)",
        baseline.ops_per_sec()
    );

    // Thermostat: 3% tolerable slowdown, 1s sampling periods.
    let (mut engine, mut app) = make();
    let mut daemon = Daemon::new(ThermostatConfig {
        sampling_period_ns: 1_000_000_000,
        ..ThermostatConfig::paper_defaults()
    });
    let managed = run_for(&mut engine, &mut app, &mut daemon, duration);
    let fb = engine.footprint_breakdown();
    println!(
        "thermostat: {:>9.0} ops/s with {:.0}% of the footprint in slow memory",
        managed.ops_per_sec(),
        fb.cold_fraction() * 100.0
    );
    println!(
        "slowdown:   {:+.2}% (target {:.0}%)",
        (baseline.ops_per_sec() / managed.ops_per_sec() - 1.0) * 100.0,
        daemon.config().tolerable_slowdown_pct
    );
    println!(
        "daemon:     {} periods, {} pages demoted, {} promoted back",
        daemon.stats().periods,
        daemon.stats().pages_demoted,
        daemon.stats().pages_promoted
    );
    let savings = thermostat_suite::mem::CostModel::new(0.25)
        .evaluate(fb.cold_fraction())
        .savings_fraction;
    println!(
        "cost:       {:.0}% memory-spend savings at 0.25x slow-memory pricing",
        savings * 100.0
    );
}

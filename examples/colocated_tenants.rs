//! Scenario: the cloud provider's view. Two tenants — a hot Redis cache
//! and a mostly-cold web-search index — share one guest. Thermostat
//! manages the combined footprint transparently (neither tenant is
//! modified or even aware), and the per-region breakdown shows the
//! provider exactly whose bytes ended up in cheap memory.
//!
//! Run with: `cargo run --release --example colocated_tenants`

use thermostat_suite::core::{Daemon, ThermostatConfig};
use thermostat_suite::sim::{run_for, Engine, NoPolicy, SimConfig, Workload};
use thermostat_suite::workloads::{AppConfig, AppId, Colocated, Tenant};

const DURATION_NS: u64 = 30_000_000_000;

fn build() -> (Engine, Colocated) {
    let mut engine = Engine::new(SimConfig::paper_defaults(1 << 30, 1 << 30));
    let cfg = AppConfig {
        scale: 64,
        seed: 21,
        read_pct: 90,
    };
    let mut tenants = Colocated::new(
        vec![
            Tenant::new(AppId::Redis.build(cfg), 4),
            Tenant::new(AppId::WebSearch.build(cfg), 1),
        ],
        21,
    );
    tenants.init(&mut engine);
    (engine, tenants)
}

fn main() {
    let (mut engine, mut tenants) = build();
    let base = run_for(&mut engine, &mut tenants, &mut NoPolicy, DURATION_NS);
    println!(
        "baseline (all-DRAM): {:.0} ops/s across both tenants",
        base.ops_per_sec()
    );

    let (mut engine, mut tenants) = build();
    let mut daemon = Daemon::new(ThermostatConfig {
        sampling_period_ns: 1_000_000_000,
        ..ThermostatConfig::paper_defaults()
    });
    let managed = run_for(&mut engine, &mut tenants, &mut daemon, DURATION_NS);
    println!(
        "thermostat:          {:.0} ops/s ({:+.2}% vs baseline, target 3%)\n",
        managed.ops_per_sec(),
        (base.ops_per_sec() / managed.ops_per_sec() - 1.0) * 100.0
    );

    println!("who went cold? (per-region breakdown)");
    println!(
        "{:<16} {:>9} {:>9} {:>7}",
        "region", "total MB", "cold MB", "cold"
    );
    for (name, b) in engine.region_breakdown() {
        if b.total() == 0 {
            continue;
        }
        println!(
            "{:<16} {:>9.1} {:>9.1} {:>6.1}%",
            name,
            b.total() as f64 / 1e6,
            b.cold() as f64 / 1e6,
            b.cold_fraction() * 100.0
        );
    }
    println!(
        "\nthe provider saved {:.0}% of memory spend (0.25x slow pricing) without\n\
         touching either tenant — the paper's application-transparency claim.",
        thermostat_suite::mem::CostModel::new(0.25)
            .evaluate(engine.footprint_breakdown().cold_fraction())
            .savings_fraction
            * 100.0
    );
}

//! A step-by-step reproduction of the paper's **Figure 4**: Thermostat's
//! three scans acting on a small address space of eight huge pages.
//!
//! The example drives the engine manually — no daemon — so every stage of
//! the mechanism is visible: splitting sampled pages, the Accessed-bit
//! prefilter, poisoning, fault counting, spatial extrapolation, and the
//! final hot/cold classification.
//!
//! Run with: `cargo run --release --example mechanism_walkthrough`

use thermostat_suite::core::{classify, extrapolate, Candidate, ThermostatConfig};
use thermostat_suite::mem::{PageSize, Tier, VirtAddr, Vpn, PAGES_PER_HUGE};
use thermostat_suite::sim::{Engine, SimConfig};

const N_PAGES: u64 = 8;
const HUGE: u64 = 2 << 20;

/// Per-page access rates for the example (accesses/sec): two hot pages,
/// two warm, four nearly idle.
const PAGE_RATES: [u64; N_PAGES as usize] = [40_000, 200, 25_000, 50, 120, 9_000, 10, 400];

fn drive_traffic(engine: &mut Engine, base: VirtAddr, duration_ns: u64) {
    // Round-robin generator approximating each page's rate over the window.
    let until = engine.now_ns() + duration_ns;
    let mut cursors = [0u64; N_PAGES as usize];
    while engine.now_ns() < until {
        for (p, rate) in PAGE_RATES.iter().enumerate() {
            // Issue accesses proportional to the page's rate per 1ms slice.
            let per_slice = (rate / 1000).max(if engine.now_ns() % 7 == 0 { 1 } else { 0 });
            for _ in 0..per_slice.min(64) {
                let off = (cursors[p] * 4096 + cursors[p] * 64) % HUGE;
                engine.access(base + p as u64 * HUGE + off, false);
                cursors[p] += 1;
            }
        }
        engine.advance_compute(1_000_000); // 1ms of app compute per slice
    }
}

fn main() {
    let cfg = ThermostatConfig::paper_defaults();
    let mut sim = SimConfig::paper_defaults(64 << 20, 64 << 20);
    // A small TLB keeps the demo's fault counting visible on 8 pages.
    sim.tlb = thermostat_suite::vm::TlbConfig {
        l1_small: thermostat_suite::vm::TlbGeometry::new(8, 4),
        l1_huge: thermostat_suite::vm::TlbGeometry::new(4, 4),
        l2: thermostat_suite::vm::TlbGeometry::new(16, 8),
        l2_hit_ns: 7,
    };
    let mut engine = Engine::new(sim);
    let base = engine.mmap(N_PAGES * HUGE, true, true, false, "heap");
    for p in 0..N_PAGES {
        engine.access(base + p * HUGE, true);
    }
    let vpn = |p: u64| Vpn(base.vpn().0 + p * PAGES_PER_HUGE as u64);

    println!("Figure 4 walkthrough: 8 huge pages, true rates {PAGE_RATES:?} acc/s\n");

    // ---- Scan 1: split a sample (here: pages 1 and 5, like the figure).
    let sample = [1u64, 5];
    for &p in &sample {
        engine.split_huge(vpn(p)).unwrap();
        let mut hits = Vec::new();
        engine.scan_and_clear_accessed(vpn(p), PAGES_PER_HUGE as u64, &mut hits);
    }
    println!("scan 1 (split):   sampled huge pages {sample:?} split into 4KB PTEs, A bits cleared");
    drive_traffic(&mut engine, base, 100_000_000);

    // ---- Scan 2: A-bit prefilter, then poison <= K accessed children.
    let mut monitored: Vec<(u64, Vec<Vpn>, u32)> = Vec::new();
    for &p in &sample {
        let mut hits = Vec::new();
        engine.scan_and_clear_accessed(vpn(p), PAGES_PER_HUGE as u64, &mut hits);
        let accessed: Vec<Vpn> = hits
            .iter()
            .filter(|h| h.accessed)
            .map(|h| h.base_vpn)
            .collect();
        let n_accessed = accessed.len() as u32;
        let chosen: Vec<Vpn> = accessed.into_iter().take(cfg.max_poison_per_page).collect();
        for &c in &chosen {
            engine.poison_page(c, PageSize::Small4K);
        }
        println!(
            "scan 2 (poison):  page {p}: {n_accessed} of 512 children accessed, {} poisoned",
            chosen.len()
        );
        monitored.push((p, chosen, n_accessed));
    }
    drive_traffic(&mut engine, base, 100_000_000);

    // ---- Scan 3: collect counts, extrapolate, classify.
    println!("\nscan 3 (classify):");
    let mut candidates = Vec::new();
    for (p, children, n_accessed) in &monitored {
        let mut faults = 0;
        for &c in children {
            faults += engine.unpoison_page(c);
        }
        let est = extrapolate(faults, children.len() as u32, *n_accessed, 100_000_000);
        println!(
            "  page {p}: {faults} faults on {} children -> estimated {:>8.0} acc/s (true {:>6})",
            children.len(),
            est.rate_per_sec,
            PAGE_RATES[*p as usize]
        );
        candidates.push(Candidate {
            vpn: vpn(*p),
            rate_per_sec: est.rate_per_sec,
        });
    }
    let budget = (sample.len() as f64 / N_PAGES as f64) * cfg.target_slow_access_rate();
    let result = classify(candidates, budget);
    println!(
        "  budget for the sampled fraction: {budget:.0} acc/s (f x {:.0})",
        cfg.target_slow_access_rate()
    );

    for c in &result.cold {
        let p = (c.vpn.0 - base.vpn().0) / PAGES_PER_HUGE as u64;
        engine.migrate_split_huge(c.vpn, Tier::Slow).unwrap();
        engine.collapse_huge(c.vpn).unwrap();
        engine.poison_page(c.vpn, PageSize::Huge2M);
        println!("  -> page {p} classified COLD: migrated to slow memory, monitoring continues");
    }
    for c in &result.hot {
        let p = (c.vpn.0 - base.vpn().0) / PAGES_PER_HUGE as u64;
        engine.collapse_huge(c.vpn).unwrap();
        println!("  -> page {p} classified HOT: collapsed back to a 2MB page in DRAM");
    }

    let fb = engine.footprint_breakdown();
    println!(
        "\nresult: {:.1} MB cold of {:.1} MB resident; slow-memory faults so far: {}",
        fb.cold() as f64 / 1e6,
        fb.total() as f64 / 1e6,
        engine.stats().slow_trap_faults
    );
    println!("(the daemon repeats this every sampling period over a random 5% sample)");
}

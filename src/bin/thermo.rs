//! `thermo` — run any of the paper's applications under any policy from
//! the command line.
//!
//! ```console
//! $ thermo run redis --policy thermostat --slowdown 3 --secs 30
//! $ thermo run cassandra --policy baseline --write-heavy
//! $ thermo run mysql-tpcc --policy kstaled
//! $ thermo list
//! ```

use std::process::ExitCode;
use thermostat_suite::core::{Daemon, ThermostatConfig};
use thermostat_suite::kstaled::{Kstaled, KstaledConfig};
use thermostat_suite::sim::{run_for, Engine, NoPolicy, PolicyHook, SimConfig};
use thermostat_suite::workloads::{AppConfig, AppId};

const USAGE: &str = "\
thermo — Thermostat (ASPLOS'17) reproduction driver

USAGE:
  thermo list
  thermo run <app> [--policy baseline|thermostat|kstaled]
                   [--slowdown <pct>]   tolerable slowdown (default 3)
                   [--secs <n>]         virtual seconds (default 30)
                   [--scale <n>]        footprint divisor vs paper (default 64)
                   [--period-ms <n>]    sampling period (default 1000)
                   [--write-heavy]      5:95 read/write mix (default 95:5)
                   [--seed <n>]

APPS: aerospike cassandra in-memory-analytics mysql-tpcc redis web-search
";

struct Args {
    app: AppId,
    policy: String,
    slowdown: f64,
    secs: u64,
    scale: u64,
    period_ms: u64,
    read_pct: u8,
    seed: u64,
}

fn parse(mut argv: Vec<String>) -> Result<Option<Args>, String> {
    if argv.is_empty() {
        return Err("missing command".into());
    }
    match argv.remove(0).as_str() {
        "list" => {
            for app in AppId::ALL {
                println!(
                    "{app:<22} paper RSS {:>5.1} GB, file-mapped {:>6.0} MB",
                    app.paper_rss_bytes() as f64 / 1e9,
                    app.paper_file_bytes() as f64 / 1e6
                );
            }
            Ok(None)
        }
        "run" => {
            if argv.is_empty() {
                return Err("run: missing <app>".into());
            }
            let app: AppId = argv.remove(0).parse().map_err(|e| format!("{e}"))?;
            let mut args = Args {
                app,
                policy: "thermostat".into(),
                slowdown: 3.0,
                secs: 30,
                scale: 64,
                period_ms: 1000,
                read_pct: 95,
                seed: 42,
            };
            let mut it = argv.into_iter();
            while let Some(flag) = it.next() {
                let mut grab =
                    |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
                match flag.as_str() {
                    "--policy" => args.policy = grab("--policy")?,
                    "--slowdown" => {
                        args.slowdown = grab("--slowdown")?
                            .parse()
                            .map_err(|e| format!("--slowdown: {e}"))?
                    }
                    "--secs" => {
                        args.secs = grab("--secs")?
                            .parse()
                            .map_err(|e| format!("--secs: {e}"))?
                    }
                    "--scale" => {
                        args.scale = grab("--scale")?
                            .parse()
                            .map_err(|e| format!("--scale: {e}"))?
                    }
                    "--period-ms" => {
                        args.period_ms = grab("--period-ms")?
                            .parse()
                            .map_err(|e| format!("--period-ms: {e}"))?
                    }
                    "--seed" => {
                        args.seed = grab("--seed")?
                            .parse()
                            .map_err(|e| format!("--seed: {e}"))?
                    }
                    "--write-heavy" => args.read_pct = 5,
                    other => return Err(format!("unknown flag {other}")),
                }
            }
            Ok(Some(args))
        }
        other => Err(format!("unknown command {other}")),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse(argv) {
        Ok(Some(a)) => a,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let footprint = (args.app.paper_rss_bytes() + args.app.paper_file_bytes()) / args.scale;
    let cfg = SimConfig::paper_defaults(footprint * 2 + (64 << 20), footprint + (64 << 20));
    let mut engine = Engine::new(cfg);
    let mut workload = args.app.build(AppConfig {
        scale: args.scale,
        seed: args.seed,
        read_pct: args.read_pct,
    });
    print!("loading {} at 1/{} scale... ", args.app, args.scale);
    workload.init(&mut engine);
    println!("{} MB resident", engine.rss_bytes() / (1 << 20));

    let duration = args.secs * 1_000_000_000;
    let mut daemon;
    let mut ks;
    let mut nop = NoPolicy;
    let policy: &mut dyn PolicyHook = match args.policy.as_str() {
        "baseline" => &mut nop,
        "thermostat" => {
            daemon = Daemon::new(ThermostatConfig {
                tolerable_slowdown_pct: args.slowdown,
                sampling_period_ns: args.period_ms * 1_000_000,
                seed: args.seed,
                ..ThermostatConfig::paper_defaults()
            });
            &mut daemon
        }
        "kstaled" => {
            ks = Kstaled::new(KstaledConfig {
                scan_period_ns: args.period_ms * 1_000_000,
            });
            &mut ks
        }
        other => {
            eprintln!("error: unknown policy {other}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let out = run_for(&mut engine, workload.as_mut(), policy, duration);
    let fb = engine.footprint_breakdown();
    println!(
        "\n{} under '{}' for {} virtual seconds:",
        args.app, args.policy, args.secs
    );
    println!("  throughput     {:>12.0} ops/s", out.ops_per_sec());
    println!(
        "  footprint      {:>9} MB ({:.1}% in slow memory)",
        fb.total() / (1 << 20),
        fb.cold_fraction() * 100.0
    );
    println!(
        "  slow accesses  {:>12} faults ({:.0}/s)",
        engine.stats().slow_trap_faults,
        engine.stats().slow_trap_faults as f64 / args.secs as f64
    );
    println!(
        "  TLB miss ratio {:>12.4}   LLC miss ratio {:.4}",
        engine.tlb_stats().miss_ratio(),
        engine.stats().llc_miss_ratio()
    );
    let ms = engine.migration_stats();
    println!(
        "  migrations     {:>9} pages to slow, {} back ({:.2} / {:.2} MB/s)",
        ms.to_slow_pages,
        ms.back_to_fast_pages,
        ms.to_slow_mbps(duration),
        ms.back_to_fast_mbps(duration),
    );
    ExitCode::SUCCESS
}

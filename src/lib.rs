//! Umbrella crate for the Thermostat (ASPLOS'17) reproduction.
//!
//! Re-exports every workspace crate under one roof so that examples and
//! integration tests can `use thermostat_suite::...`. See the README for the
//! architecture overview and `DESIGN.md` for the paper-to-module map.
//!
//! * [`mem`] — physical memory: tiers, frames, migration, wear, cost.
//! * [`vm`] — page tables, PTE bits, TLBs, page-walk cost models.
//! * [`trap`] — BadgerTrap-style poisoned-PTE fault interception.
//! * [`sim`] — the virtual-time execution engine and LLC model.
//! * [`kstaled`] — the Accessed-bit idle-page-tracking baseline.
//! * [`workloads`] — the six synthetic cloud applications + YCSB driver.
//! * [`core`] — Thermostat itself: sampling, estimation, classification,
//!   correction, and the policy daemon.
//! * [`exec`] — deterministic parallel job execution (worker pool with
//!   stable job ids, per-job seeds, job-id-order merging).
//! * [`bench`] — experiment harnesses and report serialization.

#![warn(missing_docs)]
pub use thermo_bench as bench;
pub use thermo_exec as exec;
pub use thermo_kstaled as kstaled;
pub use thermo_mem as mem;
pub use thermo_sim as sim;
pub use thermo_trap as trap;
pub use thermo_vm as vm;
pub use thermo_workloads as workloads;
pub use thermostat as core;

#!/usr/bin/env bash
# Golden-artifact gate for the fig/tab experiment registry.
#
#   scripts/golden.sh check [id...]   re-run experiments at smoke scale and
#                                     structurally diff against goldens/
#                                     (tolerance bands; exit 1 on mismatch)
#   scripts/golden.sh bless [id...]   overwrite goldens/ with fresh artifacts
#
# With no ids, all registered experiments (fig5–fig10, tab2–tab4) run.
# The diff is structural, not byte-based: integers (policy decisions)
# must match exactly, floats (derived measurements) get per-field
# tolerance bands — see DESIGN.md "Golden artifacts". Set
# THERMO_GOLDEN_DIR to check against an alternate golden tree.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-check}"
shift $(( $# > 0 ? 1 : 0 ))

case "$mode" in
  check|bless) ;;
  *)
    echo "usage: scripts/golden.sh [check|bless] [id...]" >&2
    exit 2
    ;;
esac

exec cargo run -q --release --offline -p thermo-bench --bin golden -- "$mode" "$@"

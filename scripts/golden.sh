#!/usr/bin/env bash
# Golden-artifact gate for the fig/tab experiment registry.
#
#   scripts/golden.sh check [--full] [id...]   re-run experiments and
#                                     structurally diff against goldens/
#                                     (tolerance bands; exit 1 on mismatch)
#   scripts/golden.sh bless [--full] [id...]   overwrite goldens with fresh
#                                     artifacts
#
# With no ids, all registered experiments (fig5–fig10, tab2–tab4, and
# the multi-tenant `tenants` colocation run) execute as parallel jobs on
# the thermo-exec pool (THERMO_JOBS workers, default = available
# parallelism). Policy scans inside each experiment additionally fan out
# over their own pool (THERMO_SCAN_JOBS workers, default 1 = inline).
# Artifacts are byte-identical for any worker count on either knob, so
# parallelism only changes the wall-clock, which the binary prints per
# experiment and in total.
#
# Two tiers:
#   default      smoke scale (EvalParams::smoke), goldens/, default CI;
#   --full       the full 1/16 evaluation scale (EvalParams::full),
#                goldens/full/, opt-in for release branches — bless it
#                once before the first check (its goldens are blessed
#                separately and are NOT part of default CI). Equivalent:
#                THERMO_GOLDEN_SCALE=full.
#
# The diff is structural, not byte-based: integers (policy decisions)
# must match exactly, floats (derived measurements) get per-field
# tolerance bands — see DESIGN.md "Golden artifacts". Set
# THERMO_GOLDEN_DIR to check against an alternate golden tree.
#
# Note: `bless` covers experiment artifacts only. The static-analysis
# baseline (goldens/lint-baseline.json) is blessed separately — after
# fixing grandfathered violations, count it down with
#   cargo run -p thermo-lint -- --write-baseline goldens/lint-baseline.json
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-check}"
shift $(( $# > 0 ? 1 : 0 ))

case "$mode" in
  check|bless) ;;
  *)
    echo "usage: scripts/golden.sh [check|bless] [--full] [id...]" >&2
    exit 2
    ;;
esac

exec cargo run -q --release --offline -p thermo-bench --bin golden -- "$mode" "$@"

#!/usr/bin/env bash
# CI gate for the Thermostat reproduction.
#
# The workspace is hermetic: it has ZERO crates.io dependencies (everything
# external the seed used — rand, serde/serde_json, proptest, criterion,
# parking_lot — was replaced by the in-tree `thermo-util` crate). Every step
# below therefore runs with `--offline`; if a change reintroduces a network
# dependency, the build step fails here first.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release --offline (all targets)"
cargo build --release --offline --workspace --all-targets

echo "==> cargo test -q --offline (entire workspace)"
cargo test -q --offline --workspace

echo "==> smoke-run benches (THERMO_BENCH_FAST=1)"
THERMO_BENCH_FAST=1 cargo bench -q --offline --workspace >/dev/null

echo "==> golden-artifact check (scripts/golden.sh check)"
scripts/golden.sh check

echo "CI OK"

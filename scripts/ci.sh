#!/usr/bin/env bash
# CI gate for the Thermostat reproduction.
#
# The workspace is hermetic: it has ZERO crates.io dependencies (everything
# external the seed used — rand, serde/serde_json, proptest, criterion,
# parking_lot — was replaced by the in-tree `thermo-util` crate). Every step
# below therefore runs with `--offline`; if a change reintroduces a network
# dependency, the build step fails here first.
set -euo pipefail
cd "$(dirname "$0")/.."

# Worker count for the parallel golden gate (thermo-exec pool). Artifacts
# are byte-identical for any value — see DESIGN.md §9 — so CI only tunes
# this for speed.
THERMO_JOBS="${THERMO_JOBS:-$(nproc 2>/dev/null || echo 2)}"
export THERMO_JOBS

echo "==> cargo fmt --check"
cargo fmt --check

# Static-analysis gate (DESIGN.md §11, §16): determinism and seam
# invariants, enforced before anything is built in release mode so
# violations fail in seconds. Findings already recorded in
# goldens/lint-baseline.json are grandfathered (visible, counted,
# expected to reach zero); anything new fails here. The binary prints
# per-lint counts either way.
#
# The linter itself fans per-file analysis through the thermo-exec pool,
# so its report is subject to the same byte-identity discipline as the
# experiment artifacts: run `--json` at two different worker counts and
# byte-compare. A mismatch means findings merged in completion order
# instead of path order — the exact bug E2 exists to catch elsewhere.
echo "==> thermo-lint (vs goldens/lint-baseline.json, --json byte-stable across THERMO_JOBS)"
lint_dir="target/lint-ci"
mkdir -p "$lint_dir"
lint_start_ns=$(date +%s%N)
cargo run -q --offline -p thermo-lint -- --baseline goldens/lint-baseline.json
THERMO_JOBS=1 cargo run -q --offline -p thermo-lint -- \
  --baseline goldens/lint-baseline.json --json >"$lint_dir/report-j1.json"
THERMO_JOBS=7 cargo run -q --offline -p thermo-lint -- \
  --baseline goldens/lint-baseline.json --json >"$lint_dir/report-j7.json"
cmp "$lint_dir/report-j1.json" "$lint_dir/report-j7.json" || {
  echo "FAIL: thermo-lint --json differs between THERMO_JOBS=1 and THERMO_JOBS=7" >&2
  exit 1
}
lint_end_ns=$(date +%s%N)
echo "    lint wall-clock $(((lint_end_ns - lint_start_ns) / 1000000)) ms for 3 passes (gate + 2 determinism reps)"

echo "==> cargo build --release --offline (all targets)"
cargo build --release --offline --workspace --all-targets

echo "==> cargo test -q --offline (entire workspace)"
cargo test -q --offline --workspace

# Bench regression gate: run both bench targets N times in smoke mode and
# gate on the median of the N single-shot medians against the checked-in
# baseline (goldens/bench-baseline.json — itself a median-of-5 recording,
# see EXPERIMENTS.md "Regenerating the bench baseline").
#
# Threshold justification (measured while characterizing variance for
# this gate): single-shot medians of the nanosecond-scale benches move up
# to ~2.4x across sessions (cache/heap alignment, runner load), but the
# median-of-5 is far steadier — worst observed within-session sigma was
# ~35% of the median (llc_access_random), most benches under 10%. A +150%
# threshold on the median-of-5 therefore only trips on genuine >=2.5x
# blowups (algorithmic regressions, accidental O(n^2)), not timing noise
# — down from the provisional single-shot +300% gate.
THERMO_BENCH_REPS="${THERMO_BENCH_REPS:-5}"
THERMO_BENCH_MAX_REGRESSION_PCT="${THERMO_BENCH_MAX_REGRESSION_PCT:-150}"
echo "==> bench regression gate (N=$THERMO_BENCH_REPS smoke reps, median-of-N vs baseline, threshold +${THERMO_BENCH_MAX_REGRESSION_PCT}%)"
bdir="target/bench-ci"
rm -rf "$bdir"
mkdir -p "$bdir"
for rep in $(seq 1 "$THERMO_BENCH_REPS"); do
  for bench in microbench pipeline; do
    THERMO_BENCH_FAST=1 THERMO_BENCH_JSON="$PWD/$bdir/rep$rep-$bench.json" \
      cargo bench -q --offline -p thermo-bench --bench "$bench" >/dev/null
  done
done
awk -v thr="$THERMO_BENCH_MAX_REGRESSION_PCT" '
  FNR == 1 { base = (FILENAME ~ /bench-baseline/) }
  /"name":/ { gsub(/.*"name": *"|",?$/, ""); name = $0 }
  /"median_ns":/ {
    gsub(/.*"median_ns": *|,$/, "")
    if (base) bmed[name] = $0
    else { if (!(name in meds)) order[++n] = name; meds[name] = meds[name] " " $0 }
  }
  END {
    fail = 0
    for (k = 1; k <= n; k++) {
      nm = order[k]
      m = split(meds[nm], a, " ")
      for (i = 1; i < m; i++)
        for (j = i + 1; j <= m; j++)
          if (a[j] + 0 < a[i] + 0) { t = a[i]; a[i] = a[j]; a[j] = t }
      med = (m % 2) ? a[(m + 1) / 2] : (a[m / 2] + a[m / 2 + 1]) / 2
      mean = 0; for (i = 1; i <= m; i++) mean += a[i]; mean /= m
      ss = 0; for (i = 1; i <= m; i++) ss += (a[i] - mean) ^ 2
      sd = sqrt(ss / m)
      if (nm in bmed && bmed[nm] + 0 > 0) pct = (med / bmed[nm] - 1) * 100; else pct = 0
      printf "    %-42s median-of-%d %12.1f ns  sigma %10.1f ns  vs baseline %+7.1f%%\n", nm, m, med, sd, pct
      if (pct > thr) {
        printf "bench regression: %s median-of-%d %.1f ns vs baseline %.1f ns (+%.1f%%, threshold +%s%%)\n", nm, m, med, bmed[nm], pct, thr
        fail = 1
      }
    }
    exit fail
  }
' goldens/bench-baseline.json "$bdir"/rep*.json

# Off-thread scan cross-check: the same cheap experiment run with inline
# policy scans (THERMO_SCAN_JOBS=0) and with a 4-worker scan pool must
# produce byte-identical artifacts. tests/scan_parallel_determinism.rs is
# the exhaustive in-process version; this is the live end-to-end guard at
# the binary boundary.
echo "==> scan-parallel cross-check (fig10, THERMO_SCAN_JOBS=0 vs 4, byte compare)"
THERMO_SCALE=512 THERMO_DURATION_SECS=3 THERMO_PERIOD_SECS=1 THERMO_SCAN_JOBS=0 \
  cargo run -q --release --offline -p thermo-bench --bin fig10 >/dev/null
cp target/experiments/fig10.artifact.json "$bdir/fig10.scan-inline.artifact.json"
THERMO_SCALE=512 THERMO_DURATION_SECS=3 THERMO_PERIOD_SECS=1 THERMO_SCAN_JOBS=4 \
  cargo run -q --release --offline -p thermo-bench --bin fig10 >/dev/null
cmp "$bdir/fig10.scan-inline.artifact.json" target/experiments/fig10.artifact.json
echo "    byte-identical"

# Parallel golden gate, run twice: once with inline scans (the pre-seam
# wall-clock baseline) and once with a 4-worker scan pool, so the
# off-thread scan speedup — and the fact that the verdict is identical —
# is visible in CI logs. Per-experiment and total wall-clock are printed
# by the golden binary.
echo "==> golden-artifact check, inline scans (THERMO_SCAN_JOBS=1, THERMO_JOBS=$THERMO_JOBS) — wall-clock before"
THERMO_SCAN_JOBS=1 scripts/golden.sh check
echo "==> golden-artifact check, off-thread scans (THERMO_SCAN_JOBS=4, THERMO_JOBS=$THERMO_JOBS) — wall-clock after"
THERMO_SCAN_JOBS=4 scripts/golden.sh check

# Determinism cross-check: the cheapest registry experiment re-run
# serially must match the same goldens the parallel sweep just checked —
# a live guard that worker count never leaks into artifacts.
echo "==> golden determinism cross-check (THERMO_JOBS=1, fig10)"
THERMO_JOBS=1 scripts/golden.sh check fig10

# Migration-fabric cross-check: the transactional-migration experiments
# (async copy, write-abort/retry backoff, shadow promotion) are the
# registry entries most sensitive to scheduling leaks — re-check their
# goldens serially on top of the parallel sweep above.
echo "==> golden determinism cross-check (THERMO_JOBS=1, fab_bw fab_abort)"
THERMO_JOBS=1 scripts/golden.sh check fab_bw fab_abort

# Co-scheduled shared-tier cross-check: tenants_shared runs three
# tenants on one discrete-event timeline over one arbitrated pool
# (DESIGN.md §13); its golden must be identical serially — the run is
# single-threaded by construction, so worker count must be unobservable.
echo "==> golden determinism cross-check (THERMO_JOBS=1, tenants_shared)"
THERMO_JOBS=1 scripts/golden.sh check tenants_shared

# Scenario smoke-scale sweep: the compiled-scenario experiments — the
# 1024-shard policy-matrix fleet (sharded path) and the 32-tenant
# co-scheduled storm (DESIGN.md §14) — re-checked serially so a worker
# count of one reproduces the same goldens the parallel sweep covered.
echo "==> golden determinism cross-check (THERMO_JOBS=1, scen_fleet scen_storm)"
THERMO_JOBS=1 scripts/golden.sh check scen_fleet scen_storm

# Scheduler ordering-fuzz sweep: THERMO_SCHED_FUZZ permutes same-
# (time, class) pop-order batches under a seeded RNG. The co-scheduled
# goldens must be byte-identical under every seed — components sharing a
# tick are required to commute (tests/sched_fuzz.rs sweeps the whole
# registry; here both experiments that actually share a timeline are
# re-checked against their committed goldens: tenants_shared's three
# tenants and the scenario storm's 32 mixed-policy tenants).
for fuzz_seed in 1 2 3735928559 6840227782638526189; do
  echo "==> scheduler ordering-fuzz check (THERMO_SCHED_FUZZ=$fuzz_seed, tenants_shared scen_storm)"
  THERMO_SCHED_FUZZ=$fuzz_seed scripts/golden.sh check tenants_shared scen_storm
done

# Executor worker-count cross-check at the binary boundary: the golden
# sweeps above already check every experiment against its golden under
# THERMO_JOBS workers, but tolerance bands could in principle mask a
# sub-band scheduling leak. Re-run the heaviest sharded experiment with
# one worker and with an oversubscribed pool and compare the emitted
# artifact BYTES directly — the work-stealing merge (DESIGN.md §15) must
# make worker count entirely unobservable.
echo "==> executor worker-count cross-check (scen_fleet, THERMO_JOBS=1 vs 8, byte compare)"
THERMO_JOBS=1 scripts/golden.sh check scen_fleet >/dev/null
cp target/experiments/scen_fleet.artifact.json "$bdir/scen_fleet.jobs1.artifact.json"
THERMO_JOBS=8 scripts/golden.sh check scen_fleet >/dev/null
cmp "$bdir/scen_fleet.jobs1.artifact.json" target/experiments/scen_fleet.artifact.json
echo "    byte-identical"

# Steal-order fuzz sweep: THERMO_EXEC_FUZZ=<seed> makes every worker
# visit steal victims in a seeded-shuffled order, adversarially
# perturbing which worker executes which job. Goldens must still verify
# under an oversubscribed pool for every seed — the in-process version
# is thermo-bench/tests/exec_determinism.rs; this is the live
# end-to-end guard at the binary boundary.
for fuzz_seed in 1 2 3735928559 6840227782638526189; do
  echo "==> steal-order fuzz check (THERMO_EXEC_FUZZ=$fuzz_seed, THERMO_JOBS=8, scen_fleet fig8)"
  THERMO_EXEC_FUZZ=$fuzz_seed THERMO_JOBS=8 scripts/golden.sh check scen_fleet fig8
done

echo "CI OK"

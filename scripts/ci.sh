#!/usr/bin/env bash
# CI gate for the Thermostat reproduction.
#
# The workspace is hermetic: it has ZERO crates.io dependencies (everything
# external the seed used — rand, serde/serde_json, proptest, criterion,
# parking_lot — was replaced by the in-tree `thermo-util` crate). Every step
# below therefore runs with `--offline`; if a change reintroduces a network
# dependency, the build step fails here first.
set -euo pipefail
cd "$(dirname "$0")/.."

# Worker count for the parallel golden gate (thermo-exec pool). Artifacts
# are byte-identical for any value — see DESIGN.md §9 — so CI only tunes
# this for speed.
THERMO_JOBS="${THERMO_JOBS:-$(nproc 2>/dev/null || echo 2)}"
export THERMO_JOBS

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release --offline (all targets)"
cargo build --release --offline --workspace --all-targets

echo "==> cargo test -q --offline (entire workspace)"
cargo test -q --offline --workspace

# Bench regression gate: smoke-run both bench targets against the
# checked-in baseline (goldens/bench-baseline.json — see EXPERIMENTS.md
# "Regenerating the bench baseline"). The threshold is deliberately
# generous until runner timing variance is characterized (ROADMAP):
# THERMO_BENCH_FAST=1 takes single-shot samples, so only gross
# regressions (algorithmic blowups, accidental O(n^2)) should trip it.
THERMO_BENCH_MAX_REGRESSION_PCT="${THERMO_BENCH_MAX_REGRESSION_PCT:-300}"
echo "==> bench regression gate (THERMO_BENCH_FAST=1, threshold +${THERMO_BENCH_MAX_REGRESSION_PCT}%)"
for bench in microbench pipeline; do
  THERMO_BENCH_FAST=1 \
  THERMO_BENCH_BASELINE="$PWD/goldens/bench-baseline.json" \
  THERMO_BENCH_MAX_REGRESSION_PCT="$THERMO_BENCH_MAX_REGRESSION_PCT" \
    cargo bench -q --offline -p thermo-bench --bench "$bench" >/dev/null
done

# Parallel golden gate: per-experiment and total wall-clock are printed by
# the golden binary so the THERMO_JOBS speedup is visible in CI logs.
echo "==> golden-artifact check (scripts/golden.sh check, THERMO_JOBS=$THERMO_JOBS)"
scripts/golden.sh check

# Determinism cross-check: the cheapest registry experiment re-run
# serially must match the same goldens the parallel sweep just checked —
# a live guard that worker count never leaks into artifacts.
echo "==> golden determinism cross-check (THERMO_JOBS=1, fig10)"
THERMO_JOBS=1 scripts/golden.sh check fig10

echo "CI OK"

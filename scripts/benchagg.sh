#!/usr/bin/env bash
# Cross-run bench distribution collector + aggregator.
#
#   scripts/benchagg.sh [N]           run both bench targets N times
#                                     (default 5), keep every run's full
#                                     per-rep distribution, and print the
#                                     per-bench spread report
#   scripts/benchagg.sh --report-only print the report for artifacts
#                                     already in target/benchagg/
#
# Purpose: the CI bench gate thresholds the median-of-N against
# goldens/bench-baseline.json at +THERMO_BENCH_MAX_REGRESSION_PCT%. That
# threshold is only honest if it exceeds the same-code across-run median
# spread, which this script MEASURES: the report's `spread%` column is
# `(max run median / min run median - 1) * 100` per bench, and the footer
# names the worst offender. Collect on a quiet machine; tighten the gate
# to sit just above what you see.
#
# Smoke mode (THERMO_BENCH_FAST=1) is single-shot per rep, so per-run
# distributions are 1-sample and the spread is purely across-run — the
# exact quantity the CI gate experiences. Unset THERMO_BENCH_FAST for
# full 10-sample distributions per run (slower, adds within-run spread).
set -euo pipefail
cd "$(dirname "$0")/.."

outdir="target/benchagg"
reps="${1:-5}"

if [ "$reps" != "--report-only" ]; then
  case "$reps" in
    ''|*[!0-9]*) echo "usage: scripts/benchagg.sh [N | --report-only]" >&2; exit 2 ;;
  esac
  rm -rf "$outdir"
  mkdir -p "$outdir"
  for rep in $(seq 1 "$reps"); do
    for bench in microbench pipeline; do
      echo "==> bench run $rep/$reps: $bench"
      THERMO_BENCH_FAST="${THERMO_BENCH_FAST:-1}" \
        THERMO_BENCH_JSON="$PWD/$outdir/rep$rep-$bench.json" \
        cargo bench -q --offline -p thermo-bench --bench "$bench" >/dev/null
    done
  done
fi

ls "$outdir"/*.json >/dev/null 2>&1 || {
  echo "no artifacts in $outdir — run scripts/benchagg.sh [N] first" >&2
  exit 1
}
exec cargo run -q --release --offline -p thermo-bench --bin benchagg -- "$outdir"/*.json
